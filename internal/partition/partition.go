// Package partition implements HiPa's hierarchical partitioning (paper §3):
//
//  1. The vertex set is cut into cache-able partitions of fixed vertex count
//     |P| = partitionBytes / bytesPerVertex, preserving vertex order.
//  2. NUMA-aware level (§3.1, Eq. 2–3): whole partitions are assigned to
//     NUMA nodes so that every node holds ≈ |E|/N out-edges; vertex counts
//     per node are therefore multiples of |P| (the last node takes the
//     leftovers).
//  3. Cache-aware level (§3.2, Eq. 4, Fig. 2): inside each node, the node's
//     partitions are split into one contiguous group per thread with ≈
//     |Ei|/C edges each (the loosened condition Σ D(v) >= |Ei|/C applies to
//     the last group).
//
// The result carries the 2-level lookup table of Fig. 3 (thread → partition
// range → vertex range) and the intra-/inter-edge statistics of Table 1.
package partition

import (
	"fmt"

	"hipa/internal/graph"
	"hipa/internal/par"
)

// Config parameterises hierarchical partitioning.
type Config struct {
	// PartitionBytes is the cache-able partition size (the paper's tuned
	// value is 256KB on Skylake, 128KB on Haswell).
	PartitionBytes int
	// BytesPerVertex is the size of one vertex's state (4 in the paper).
	BytesPerVertex int
	// NumNodes is the number of NUMA nodes to partition across.
	NumNodes int
	// GroupsPerNode is the number of thread groups per node (one per worker
	// thread on that node). 0 means one group holding everything.
	GroupsPerNode int
	// VertexBalanced switches the NUMA level from edge-balanced (Eq. 2) to
	// naive |V|/N vertex-balanced assignment — the strawman the paper
	// rejects for skewed graphs (§3.1). Used by the ablation benchmarks.
	VertexBalanced bool
}

// DefaultConfig returns the paper's tuned Skylake configuration for the
// given topology.
func DefaultConfig(numNodes, groupsPerNode int) Config {
	return Config{
		PartitionBytes: 256 << 10,
		BytesPerVertex: 4,
		NumNodes:       numNodes,
		GroupsPerNode:  groupsPerNode,
	}
}

// Partition is one cache-able vertex range [VertexStart, VertexEnd).
type Partition struct {
	ID          int
	VertexStart graph.VertexID
	VertexEnd   graph.VertexID
	// EdgeCount is the number of out-edges of the partition's vertices.
	EdgeCount int64
}

// Vertices returns the number of vertices in the partition.
func (p Partition) Vertices() int { return int(p.VertexEnd - p.VertexStart) }

// NodeAssignment records the partitions owned by one NUMA node.
type NodeAssignment struct {
	Node       int
	PartStart  int // first partition ID (inclusive)
	PartEnd    int // last partition ID (exclusive)
	EdgeCount  int64
	VertexLow  graph.VertexID
	VertexHigh graph.VertexID
}

// Partitions returns the number of partitions on this node (n_i in Eq. 3).
func (n NodeAssignment) Partitions() int { return n.PartEnd - n.PartStart }

// Group is one thread's set of partitions (m_j consecutive partitions on a
// node, Eq. 4).
type Group struct {
	Node        int
	IndexInNode int // j within the node, 0-based
	ThreadID    int // global thread index across nodes
	PartStart   int
	PartEnd     int
	EdgeCount   int64
}

// Partitions returns m_j, the number of partitions in the group.
func (g Group) Partitions() int { return g.PartEnd - g.PartStart }

// Hierarchy is the full two-level partitioning result.
type Hierarchy struct {
	Config      Config
	NumVertices int
	NumEdges    int64
	// VerticesPerPartition is |P| (Eq. 3).
	VerticesPerPartition int
	Partitions           []Partition
	Nodes                []NodeAssignment
	Groups               []Group
}

// Build computes the hierarchical partitioning of g under cfg with the
// default parallelism. The graph's out-degrees drive the edge balancing,
// matching the paper's choice ("the out-edges are selected", §3.1).
func Build(g *graph.Graph, cfg Config) (*Hierarchy, error) {
	return BuildWorkers(g, cfg, 0)
}

// BuildWorkers is Build with an explicit worker count (positive = that many
// workers, 0 = all cores, negative = serial). The hierarchy is identical at
// any worker count: only the cache-partition level (a per-partition scan of
// the offset array) is parallel; the node and group levels are sequential
// scans whose cost is proportional to the partition count.
func BuildWorkers(g *graph.Graph, cfg Config, workers int) (*Hierarchy, error) {
	if cfg.PartitionBytes <= 0 {
		return nil, fmt.Errorf("partition: PartitionBytes must be positive, got %d", cfg.PartitionBytes)
	}
	if cfg.BytesPerVertex <= 0 {
		return nil, fmt.Errorf("partition: BytesPerVertex must be positive, got %d", cfg.BytesPerVertex)
	}
	if cfg.NumNodes < 1 {
		return nil, fmt.Errorf("partition: NumNodes must be >= 1, got %d", cfg.NumNodes)
	}
	if cfg.GroupsPerNode < 0 {
		return nil, fmt.Errorf("partition: GroupsPerNode must be >= 0, got %d", cfg.GroupsPerNode)
	}
	perPart := cfg.PartitionBytes / cfg.BytesPerVertex
	if perPart < 1 {
		return nil, fmt.Errorf("partition: partition of %dB holds no %dB vertices", cfg.PartitionBytes, cfg.BytesPerVertex)
	}
	n := g.NumVertices()
	if n == 0 {
		return nil, fmt.Errorf("partition: empty graph")
	}

	h := &Hierarchy{
		Config:               cfg,
		NumVertices:          n,
		NumEdges:             g.NumEdges(),
		VerticesPerPartition: perPart,
	}

	// Level 0: fixed-size cache-able partitions preserving vertex order.
	// Each entry depends only on its own index, so the loop is parallel with
	// disjoint writes.
	numParts := (n + perPart - 1) / perPart
	h.Partitions = make([]Partition, numParts)
	off := g.OutOffsets()
	par.Blocks(par.Fit(par.Workers(workers), int64(numParts)), numParts, func(_, plo, phi int) {
		for p := plo; p < phi; p++ {
			lo := p * perPart
			hi := min(lo+perPart, n)
			h.Partitions[p] = Partition{
				ID:          p,
				VertexStart: graph.VertexID(lo),
				VertexEnd:   graph.VertexID(hi),
				EdgeCount:   off[hi] - off[lo],
			}
		}
	})

	// Level 1: NUMA assignment of whole partitions.
	h.Nodes = assignNodes(h.Partitions, cfg, g.NumEdges(), n)

	// Level 2: per-thread groups inside each node.
	if cfg.GroupsPerNode > 0 {
		h.Groups = assignGroups(h.Partitions, h.Nodes, cfg.GroupsPerNode)
	} else {
		for _, na := range h.Nodes {
			h.Groups = append(h.Groups, Group{
				Node: na.Node, IndexInNode: 0, ThreadID: na.Node,
				PartStart: na.PartStart, PartEnd: na.PartEnd, EdgeCount: na.EdgeCount,
			})
		}
	}
	return h, nil
}

// assignNodes distributes whole partitions to NUMA nodes so each node gets
// ≈ |E|/N edges (Eq. 2–3), or ≈ |V|/N vertices when cfg.VertexBalanced.
// The last node absorbs the leftovers (§3.1).
func assignNodes(parts []Partition, cfg Config, totalEdges int64, totalVertices int) []NodeAssignment {
	nn := cfg.NumNodes
	out := make([]NodeAssignment, 0, nn)
	cur := 0
	var cumEdges int64
	var cumVerts int64
	for node := 0; node < nn; node++ {
		start := cur
		var edges int64
		if node == nn-1 {
			// Last node: leftovers.
			for ; cur < len(parts); cur++ {
				edges += parts[cur].EdgeCount
			}
		} else if cfg.VertexBalanced {
			target := int64(totalVertices) * int64(node+1) / int64(nn)
			for cur < len(parts) && cumVerts < target {
				cumVerts += int64(parts[cur].Vertices())
				edges += parts[cur].EdgeCount
				cur++
			}
		} else {
			target := totalEdges * int64(node+1) / int64(nn)
			for cur < len(parts) && cumEdges < target {
				cumEdges += parts[cur].EdgeCount
				edges += parts[cur].EdgeCount
				cur++
			}
		}
		na := NodeAssignment{Node: node, PartStart: start, PartEnd: cur, EdgeCount: edges}
		if start < cur {
			na.VertexLow = parts[start].VertexStart
			na.VertexHigh = parts[cur-1].VertexEnd
		} else if len(parts) > 0 {
			// Empty node: zero-width range at the current position.
			pos := parts[len(parts)-1].VertexEnd
			if cur < len(parts) {
				pos = parts[cur].VertexStart
			}
			na.VertexLow, na.VertexHigh = pos, pos
		}
		out = append(out, na)
	}
	return out
}

// assignGroups splits each node's partitions into groupsPerNode contiguous
// groups of ≈ equal edge counts (Eq. 4 with the loosening of §3.2).
func assignGroups(parts []Partition, nodes []NodeAssignment, groupsPerNode int) []Group {
	var out []Group
	thread := 0
	for _, na := range nodes {
		cur := na.PartStart
		var cumEdges int64
		for j := 0; j < groupsPerNode; j++ {
			start := cur
			var edges int64
			if j == groupsPerNode-1 {
				for ; cur < na.PartEnd; cur++ {
					edges += parts[cur].EdgeCount
				}
			} else {
				target := na.EdgeCount * int64(j+1) / int64(groupsPerNode)
				for cur < na.PartEnd && cumEdges < target {
					cumEdges += parts[cur].EdgeCount
					edges += parts[cur].EdgeCount
					cur++
				}
			}
			out = append(out, Group{
				Node: na.Node, IndexInNode: j, ThreadID: thread,
				PartStart: start, PartEnd: cur, EdgeCount: edges,
			})
			thread++
		}
	}
	return out
}

// Regroup returns a copy of h with the cache-aware group level (level 2)
// recomputed for groupsPerNode thread groups per node, sharing the partition
// and node levels with h — they depend only on the partition size and the
// node count, not on the thread count, which is what makes a node-level
// Hierarchy reusable across thread-count sweeps. The shared levels must be
// treated as immutable by the caller. groupsPerNode 0 means one group per
// node, as in Build.
func Regroup(h *Hierarchy, groupsPerNode int) *Hierarchy {
	nh := *h
	nh.Config.GroupsPerNode = groupsPerNode
	nh.Groups = nil
	if groupsPerNode > 0 {
		nh.Groups = assignGroups(h.Partitions, h.Nodes, groupsPerNode)
	} else {
		for _, na := range h.Nodes {
			nh.Groups = append(nh.Groups, Group{
				Node: na.Node, IndexInNode: 0, ThreadID: na.Node,
				PartStart: na.PartStart, PartEnd: na.PartEnd, EdgeCount: na.EdgeCount,
			})
		}
	}
	return &nh
}

// NumPartitions returns the total partition count.
func (h *Hierarchy) NumPartitions() int { return len(h.Partitions) }

// PartitionOfVertex returns the partition ID containing v. O(1): partitions
// are fixed-size vertex ranges.
func (h *Hierarchy) PartitionOfVertex(v graph.VertexID) int {
	return int(v) / h.VerticesPerPartition
}

// NodeOfVertex returns the NUMA node owning v's partition.
func (h *Hierarchy) NodeOfVertex(v graph.VertexID) int {
	return h.NodeOfPartition(h.PartitionOfVertex(v))
}

// NodeOfPartition returns the NUMA node owning partition p.
func (h *Hierarchy) NodeOfPartition(p int) int {
	for _, na := range h.Nodes {
		if p >= na.PartStart && p < na.PartEnd {
			return na.Node
		}
	}
	panic(fmt.Sprintf("partition: partition %d not assigned to any node", p))
}

// GroupOfPartition returns the group (thread) owning partition p.
func (h *Hierarchy) GroupOfPartition(p int) *Group {
	for i := range h.Groups {
		gr := &h.Groups[i]
		if p >= gr.PartStart && p < gr.PartEnd {
			return gr
		}
	}
	panic(fmt.Sprintf("partition: partition %d not assigned to any group", p))
}

// ThreadOfVertex returns the global thread ID whose group owns v.
func (h *Hierarchy) ThreadOfVertex(v graph.VertexID) int {
	return h.GroupOfPartition(h.PartitionOfVertex(v)).ThreadID
}

// RankBoundsBytes returns, for each node in order, the exclusive end byte
// offset of the node's slice of a per-vertex attribute array with the given
// element size. This feeds memsim.Sliced so attribute pages land on the node
// owning the corresponding vertices (§3.4's contiguous virtual addressing).
func (h *Hierarchy) RankBoundsBytes(elemBytes int) []int64 {
	out := make([]int64, len(h.Nodes))
	for i, na := range h.Nodes {
		out[i] = int64(na.VertexHigh) * int64(elemBytes)
	}
	// Ensure the final bound covers the whole array (last node's leftovers).
	out[len(out)-1] = int64(h.NumVertices) * int64(elemBytes)
	return out
}

// Validate checks the hierarchical-partitioning invariants (disjoint
// order-preserving cover, per-level edge accounting). Used heavily by tests.
func (h *Hierarchy) Validate() error {
	// Partitions cover [0, n) in order without gaps.
	want := graph.VertexID(0)
	var edgeSum int64
	for i, p := range h.Partitions {
		if p.VertexStart != want {
			return fmt.Errorf("partition %d starts at %d, want %d", i, p.VertexStart, want)
		}
		if p.VertexEnd <= p.VertexStart {
			return fmt.Errorf("partition %d empty or inverted", i)
		}
		if i < len(h.Partitions)-1 && p.Vertices() != h.VerticesPerPartition {
			return fmt.Errorf("partition %d has %d vertices, want %d", i, p.Vertices(), h.VerticesPerPartition)
		}
		want = p.VertexEnd
		edgeSum += p.EdgeCount
	}
	if int(want) != h.NumVertices {
		return fmt.Errorf("partitions cover %d vertices, want %d", want, h.NumVertices)
	}
	if edgeSum != h.NumEdges {
		return fmt.Errorf("partition edges sum to %d, want %d", edgeSum, h.NumEdges)
	}
	// Nodes cover partitions contiguously.
	cur := 0
	var nodeEdges int64
	for i, na := range h.Nodes {
		if na.PartStart != cur {
			return fmt.Errorf("node %d starts at partition %d, want %d", i, na.PartStart, cur)
		}
		if na.PartEnd < na.PartStart {
			return fmt.Errorf("node %d inverted", i)
		}
		cur = na.PartEnd
		nodeEdges += na.EdgeCount
	}
	if cur != len(h.Partitions) {
		return fmt.Errorf("nodes cover %d partitions, want %d", cur, len(h.Partitions))
	}
	if nodeEdges != h.NumEdges {
		return fmt.Errorf("node edges sum to %d, want %d", nodeEdges, h.NumEdges)
	}
	// Groups cover each node's partitions contiguously.
	gi := 0
	var groupEdges int64
	for _, na := range h.Nodes {
		cur := na.PartStart
		for gi < len(h.Groups) && h.Groups[gi].Node == na.Node {
			gr := h.Groups[gi]
			if gr.PartStart != cur {
				return fmt.Errorf("group %d starts at %d, want %d", gi, gr.PartStart, cur)
			}
			cur = gr.PartEnd
			groupEdges += gr.EdgeCount
			gi++
		}
		if cur != na.PartEnd {
			return fmt.Errorf("groups on node %d cover to %d, want %d", na.Node, cur, na.PartEnd)
		}
	}
	if gi != len(h.Groups) {
		return fmt.Errorf("group list has trailing entries")
	}
	if groupEdges != h.NumEdges {
		return fmt.Errorf("group edges sum to %d, want %d", groupEdges, h.NumEdges)
	}
	return nil
}

// EdgeBalance returns max/mean node edge counts, a workload-imbalance
// metric (1.0 = perfect balance).
func (h *Hierarchy) EdgeBalance() float64 {
	if len(h.Nodes) == 0 || h.NumEdges == 0 {
		return 1
	}
	mean := float64(h.NumEdges) / float64(len(h.Nodes))
	var max float64
	for _, na := range h.Nodes {
		if e := float64(na.EdgeCount); e > max {
			max = e
		}
	}
	return max / mean
}

// GroupEdgeBalance returns max/mean group edge counts across all groups.
func (h *Hierarchy) GroupEdgeBalance() float64 {
	if len(h.Groups) == 0 || h.NumEdges == 0 {
		return 1
	}
	mean := float64(h.NumEdges) / float64(len(h.Groups))
	var max float64
	for _, gr := range h.Groups {
		if e := float64(gr.EdgeCount); e > max {
			max = e
		}
	}
	return max / mean
}
