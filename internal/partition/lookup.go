package partition

import (
	"hipa/internal/graph"
)

// LookupTable is the globally shared 2-level table of Fig. 3 in flat-array
// form: level 1 maps every thread to its partition range, level 2 maps every
// partition to its vertex range — plus the inverted O(1) maps engines need
// on their hot paths (partition → node, partition → thread). It is immutable
// and safe for concurrent readers.
type LookupTable struct {
	verticesPerPartition int
	numVertices          int

	// Level 1: thread -> [PartStart, PartEnd).
	ThreadPartStart []int32
	ThreadPartEnd   []int32
	// Level 2: partition -> [VertexStart, VertexEnd).
	PartVertexStart []graph.VertexID
	PartVertexEnd   []graph.VertexID

	// Inverted maps.
	PartNode   []int32 // partition -> NUMA node
	PartThread []int32 // partition -> owning thread
}

// BuildLookup flattens h into a LookupTable.
func BuildLookup(h *Hierarchy) *LookupTable {
	lt := &LookupTable{
		verticesPerPartition: h.VerticesPerPartition,
		numVertices:          h.NumVertices,
		ThreadPartStart:      make([]int32, len(h.Groups)),
		ThreadPartEnd:        make([]int32, len(h.Groups)),
		PartVertexStart:      make([]graph.VertexID, len(h.Partitions)),
		PartVertexEnd:        make([]graph.VertexID, len(h.Partitions)),
		PartNode:             make([]int32, len(h.Partitions)),
		PartThread:           make([]int32, len(h.Partitions)),
	}
	for i, gr := range h.Groups {
		lt.ThreadPartStart[i] = int32(gr.PartStart)
		lt.ThreadPartEnd[i] = int32(gr.PartEnd)
		for p := gr.PartStart; p < gr.PartEnd; p++ {
			lt.PartThread[p] = int32(gr.ThreadID)
		}
	}
	for i, p := range h.Partitions {
		lt.PartVertexStart[i] = p.VertexStart
		lt.PartVertexEnd[i] = p.VertexEnd
	}
	for _, na := range h.Nodes {
		for p := na.PartStart; p < na.PartEnd; p++ {
			lt.PartNode[p] = int32(na.Node)
		}
	}
	return lt
}

// NumThreads returns the number of thread entries (level 1 width).
func (lt *LookupTable) NumThreads() int { return len(lt.ThreadPartStart) }

// NumPartitions returns the number of partitions (level 2 width).
func (lt *LookupTable) NumPartitions() int { return len(lt.PartVertexStart) }

// PartitionOf returns the partition containing vertex v in O(1).
func (lt *LookupTable) PartitionOf(v graph.VertexID) int {
	return int(v) / lt.verticesPerPartition
}

// NodeOf returns the NUMA node owning vertex v in O(1).
func (lt *LookupTable) NodeOf(v graph.VertexID) int {
	return int(lt.PartNode[lt.PartitionOf(v)])
}

// ThreadOf returns the thread owning vertex v in O(1).
func (lt *LookupTable) ThreadOf(v graph.VertexID) int {
	return int(lt.PartThread[lt.PartitionOf(v)])
}

// EdgeLocality reports the intra-/inter-edge split of a partitioned graph
// (§2.3: an edge is intra when source and destination live in the same
// partition, inter otherwise). Table 1 reports the per-partition averages.
type EdgeLocality struct {
	IntraEdges int64
	InterEdges int64
	// IntraPerPartition and InterPerPartition are averages over partitions.
	IntraPerPartition float64
	InterPerPartition float64
	// CompressedInter is the number of inter-edge messages after the PCPM
	// compression of §3.4: inter-edges with the same source vertex and the
	// same destination partition collapse into one message.
	CompressedInter int64
}

// ComputeEdgeLocality classifies every edge of g under hierarchy h.
func ComputeEdgeLocality(g *graph.Graph, h *Hierarchy) EdgeLocality {
	var loc EdgeLocality
	per := h.VerticesPerPartition
	off := g.OutOffsets()
	edges := g.OutEdges()
	for v := 0; v < g.NumVertices(); v++ {
		pv := v / per
		// Track distinct destination partitions for compression counting.
		// Adjacency lists are sorted, so distinct partitions appear as runs.
		lastPart := -1
		for _, d := range edges[off[v]:off[v+1]] {
			pd := int(d) / per
			if pd == pv {
				loc.IntraEdges++
				continue
			}
			loc.InterEdges++
			if pd != lastPart {
				loc.CompressedInter++
				lastPart = pd
			}
		}
	}
	if n := len(h.Partitions); n > 0 {
		loc.IntraPerPartition = float64(loc.IntraEdges) / float64(n)
		loc.InterPerPartition = float64(loc.InterEdges) / float64(n)
	}
	return loc
}
