package machine

// Scaled returns a copy of m with all capacity parameters (cache sizes,
// DRAM) divided by div, keeping latencies, bandwidths, core counts, and
// associativities unchanged.
//
// Why this exists: the paper's datasets are billions of edges; the catalog
// regenerates them scaled down by a divisor (internal/gen). Cache behaviour
// — the heart of the paper — depends on the *ratio* of working sets to cache
// capacities (does a rank array fit in the LLC? does a partition plus its
// buffers fit in L2?). Scaling the machine's capacities by the same divisor
// as the dataset preserves every such ratio, so the partition-size optima
// and LLC spill points land at the same paper-labelled sizes. Experiment
// reports label partition sizes at paper scale (the scaled size × div).
//
// Cache sizes are rounded to the nearest whole number of ways so the
// geometry stays valid; they never round below one line per way.
func Scaled(m *Machine, div int) *Machine {
	if div <= 1 {
		return m
	}
	c := *m
	c.Name = m.Name + "-scaled"
	c.L1 = scaleCache(m.L1, div)
	c.L2 = scaleCache(m.L2, div)
	c.LLC = scaleCache(m.LLC, div)
	c.DRAMBytes = m.DRAMBytes / int64(div)
	// Fixed time costs scale with the divisor too: a run on 1/div-sized
	// data takes ~1/div the time, so constant overheads (thread spawns,
	// migrations, barriers) must shrink by the same factor to keep their
	// *relative* weight equal to paper scale — otherwise they dominate the
	// scaled-down iteration times and distort every shape.
	c.ThreadMigrationNS = m.ThreadMigrationNS / float64(div)
	c.ThreadSpawnNS = m.ThreadSpawnNS / float64(div)
	c.SyncBarrierNS = m.SyncBarrierNS / float64(div)
	if err := c.Validate(); err != nil {
		panic("machine: invalid scaled machine: " + err.Error())
	}
	return &c
}

func scaleCache(c Cache, div int) Cache {
	way := c.LineBytes * c.Assoc
	sets := (c.SizeBytes/div + way/2) / way
	if sets < 1 {
		sets = 1
	}
	c.SizeBytes = sets * way
	return c
}
