package machine

import "fmt"

// SkylakeSilver4210 returns the paper's primary testbed (§4.1): two Intel
// Xeon Silver 4210 sockets, each a NUMA node with 10 physical cores (20
// logical), 64KB L1 and 1MB L2 per core, and a 13.75MB shared non-inclusive
// LLC, 128GB DRAM per node.
//
// The local/remote DRAM numbers encode the paper's own measurement: reading
// 1GB sequentially takes 0.06s from local memory and 0.40s from remote
// (§2.2), i.e. ~16.7GB/s vs ~2.5GB/s per core stream.
func SkylakeSilver4210() *Machine {
	m := &Machine{
		Name:           "skylake-4210",
		Microarch:      "skylake",
		NUMANodes:      2,
		CoresPerNode:   10,
		ThreadsPerCore: 2,
		L1:             Cache{SizeBytes: 64 << 10, LineBytes: 64, Assoc: 8, LatencyNS: 1.2},
		L2:             Cache{SizeBytes: 1 << 20, LineBytes: 64, Assoc: 16, LatencyNS: 4.0},
		// 13.75MB = 10 slices of 1.375MB.
		LLC:              Cache{SizeBytes: 13.75 * (1 << 20), LineBytes: 64, Assoc: 11, LatencyNS: 18.0},
		LLCInclusive:     false,
		DRAMBytes:        128 << 30,
		LocalLatencyNS:   85,
		RemoteLatencyNS:  145,
		LocalBandwidth:   1e9 / 0.06, // paper's 1GB in 0.06s
		RemoteBandwidth:  1e9 / 0.40, // paper's 1GB in 0.40s
		NodeBandwidth:    60e9,       // 6 DDR4-2400 channels, sustained
		InterconnectGBps: 20.8,       // 2x UPI links @ 10.4 GT/s

		ThreadMigrationNS: 30_000, // cross-node context transfer via DRAM
		ThreadSpawnNS:     12_000,
		SyncBarrierNS:     3_000,
		CPUGHz:            2.2,
	}
	if err := m.Validate(); err != nil {
		panic("machine: invalid skylake preset: " + err.Error())
	}
	return m
}

// HaswellE52667 returns the paper's second testbed (§4.5): two Intel Xeon
// E5-2667 v3 sockets, 8 physical cores each, 256KB L2 per core and an
// inclusive 2.5MB-per-core shared LLC (20MB per socket), 32GB DRAM per node
// (64GB total).
func HaswellE52667() *Machine {
	m := &Machine{
		Name:           "haswell-e5-2667",
		Microarch:      "haswell",
		NUMANodes:      2,
		CoresPerNode:   8,
		ThreadsPerCore: 2,
		L1:             Cache{SizeBytes: 64 << 10, LineBytes: 64, Assoc: 8, LatencyNS: 1.25},
		L2:             Cache{SizeBytes: 256 << 10, LineBytes: 64, Assoc: 8, LatencyNS: 3.5},
		LLC:            Cache{SizeBytes: 20 << 20, LineBytes: 64, Assoc: 20, LatencyNS: 14.0},
		LLCInclusive:   true,
		DRAMBytes:      32 << 30,
		// Haswell-era DRAM: slightly lower latency gap, lower bandwidth.
		LocalLatencyNS:   80,
		RemoteLatencyNS:  135,
		LocalBandwidth:   14e9,
		RemoteBandwidth:  3.0e9,
		NodeBandwidth:    45e9, // 4 DDR4-2133 channels, sustained
		InterconnectGBps: 19.2, // 2x QPI links @ 9.6 GT/s

		ThreadMigrationNS: 32_000,
		ThreadSpawnNS:     12_000,
		SyncBarrierNS:     3_000,
		CPUGHz:            3.2,
	}
	if err := m.Validate(); err != nil {
		panic("machine: invalid haswell preset: " + err.Error())
	}
	return m
}

// SingleNode returns a copy of m restricted to one NUMA node, used by the
// §4.5 single-node experiment ("HiPa deployed on single NUMA node with 20
// threads").
func SingleNode(m *Machine) *Machine {
	c := *m
	c.Name = m.Name + "-1node"
	c.NUMANodes = 1
	if err := c.Validate(); err != nil {
		panic("machine: invalid single-node derivation: " + err.Error())
	}
	return &c
}

// WithNodes returns a copy of m with the given NUMA node count, used by the
// node-scaling projection the paper's conclusion anticipates ("we expect the
// performance of HiPa to be further boosted in 4-node and 8-node machines",
// §4.5). Per-node resources (cores, caches, DRAM, bandwidth) are unchanged.
func WithNodes(m *Machine, nodes int) *Machine {
	c := *m
	c.Name = m.Name + "-" + fmt.Sprint(nodes) + "node"
	c.NUMANodes = nodes
	// The cross-node fabric grows with the socket count (more links).
	c.InterconnectGBps = m.InterconnectGBps * float64(nodes) / float64(m.NUMANodes)
	if err := c.Validate(); err != nil {
		panic("machine: invalid node-count derivation: " + err.Error())
	}
	return &c
}

// Presets maps preset names to constructors, for CLI flag parsing.
var Presets = map[string]func() *Machine{
	"skylake": SkylakeSilver4210,
	"haswell": HaswellE52667,
}
