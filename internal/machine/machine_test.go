package machine

import (
	"strings"
	"testing"
)

func TestSkylakePresetMatchesPaper(t *testing.T) {
	m := SkylakeSilver4210()
	if m.NUMANodes != 2 {
		t.Errorf("NUMANodes = %d, want 2", m.NUMANodes)
	}
	if m.CoresPerNode != 10 {
		t.Errorf("CoresPerNode = %d, want 10", m.CoresPerNode)
	}
	if m.LogicalCores() != 40 {
		t.Errorf("LogicalCores = %d, want 40 (paper uses 40 threads)", m.LogicalCores())
	}
	if m.PhysicalCores() != 20 {
		t.Errorf("PhysicalCores = %d, want 20", m.PhysicalCores())
	}
	if m.L2.SizeBytes != 1<<20 {
		t.Errorf("L2 = %d, want 1MB", m.L2.SizeBytes)
	}
	if m.LLC.SizeBytes != int(13.75*(1<<20)) {
		t.Errorf("LLC = %d, want 13.75MB", m.LLC.SizeBytes)
	}
	if m.LLCInclusive {
		t.Error("Skylake LLC must be non-inclusive (§4.5)")
	}
	// Paper §2.2: 1GB local in 0.06s, remote in 0.40s.
	if got := 1e9 / m.LocalBandwidth; got < 0.055 || got > 0.065 {
		t.Errorf("local 1GB read time = %.3fs, want ~0.06", got)
	}
	if got := 1e9 / m.RemoteBandwidth; got < 0.39 || got > 0.41 {
		t.Errorf("remote 1GB read time = %.3fs, want ~0.40", got)
	}
}

func TestHaswellPresetMatchesPaper(t *testing.T) {
	m := HaswellE52667()
	if m.L2.SizeBytes != 256<<10 {
		t.Errorf("L2 = %d, want 256KB", m.L2.SizeBytes)
	}
	if !m.LLCInclusive {
		t.Error("Haswell LLC must be inclusive (§4.5)")
	}
	if m.NUMANodes != 2 {
		t.Errorf("NUMANodes = %d, want 2", m.NUMANodes)
	}
	if m.DRAMBytes*int64(m.NUMANodes) != 64<<30 {
		t.Errorf("total DRAM = %d, want 64GB", m.DRAMBytes*int64(m.NUMANodes))
	}
}

func TestLogicalCoreTopology(t *testing.T) {
	m := SkylakeSilver4210()
	// Node-major numbering: first 20 logical cores on node 0.
	if m.NodeOfLogical(0) != 0 || m.NodeOfLogical(19) != 0 {
		t.Error("logical 0..19 should be node 0")
	}
	if m.NodeOfLogical(20) != 1 || m.NodeOfLogical(39) != 1 {
		t.Error("logical 20..39 should be node 1")
	}
	// Hyper-thread pairs share a physical core.
	if m.PhysicalOfLogical(0) != m.PhysicalOfLogical(1) {
		t.Error("logical 0 and 1 should share a physical core")
	}
	if m.PhysicalOfLogical(1) == m.PhysicalOfLogical(2) {
		t.Error("logical 1 and 2 should not share a physical core")
	}
	if m.SiblingOfLogical(4) != 5 || m.SiblingOfLogical(5) != 4 {
		t.Error("sibling pairing broken")
	}
}

func TestNodeOfLogicalPanics(t *testing.T) {
	m := SkylakeSilver4210()
	for _, bad := range []int{-1, 40} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NodeOfLogical(%d) did not panic", bad)
				}
			}()
			m.NodeOfLogical(bad)
		}()
	}
}

func TestSingleNode(t *testing.T) {
	m := SingleNode(SkylakeSilver4210())
	if m.NUMANodes != 1 {
		t.Fatalf("NUMANodes = %d, want 1", m.NUMANodes)
	}
	if m.LogicalCores() != 20 {
		t.Errorf("LogicalCores = %d, want 20", m.LogicalCores())
	}
	// Original must be unmodified.
	if SkylakeSilver4210().NUMANodes != 2 {
		t.Error("SingleNode mutated the preset")
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	base := SkylakeSilver4210()
	mutations := []struct {
		name string
		mut  func(m *Machine)
	}{
		{"zero nodes", func(m *Machine) { m.NUMANodes = 0 }},
		{"zero cores", func(m *Machine) { m.CoresPerNode = 0 }},
		{"bad SMT", func(m *Machine) { m.ThreadsPerCore = 3 }},
		{"L1 > L2", func(m *Machine) { m.L1.SizeBytes = 2 << 20 }},
		{"line mismatch", func(m *Machine) { m.L1.LineBytes = 32; m.L1.Assoc = 8 }},
		{"remote < local latency", func(m *Machine) { m.RemoteLatencyNS = 1 }},
		{"remote > local bandwidth", func(m *Machine) { m.RemoteBandwidth = m.LocalBandwidth * 2 }},
		{"zero GHz", func(m *Machine) { m.CPUGHz = 0 }},
	}
	for _, mu := range mutations {
		c := *base
		mu.mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid machine", mu.name)
		}
	}
}

func TestCacheSets(t *testing.T) {
	c := Cache{SizeBytes: 1 << 20, LineBytes: 64, Assoc: 16}
	if got := c.Sets(); got != 1024 {
		t.Errorf("Sets = %d, want 1024", got)
	}
	var zero Cache
	if zero.Sets() != 0 {
		t.Error("zero cache should have 0 sets")
	}
}

func TestStringMentionsInclusivity(t *testing.T) {
	if s := SkylakeSilver4210().String(); !strings.Contains(s, "non-inclusive") {
		t.Errorf("skylake String() = %q", s)
	}
	if s := HaswellE52667().String(); !strings.Contains(s, "inclusive") || strings.Contains(s, "non-inclusive") {
		t.Errorf("haswell String() = %q", s)
	}
}

func TestPresetsMap(t *testing.T) {
	for name, f := range Presets {
		m := f()
		if err := m.Validate(); err != nil {
			t.Errorf("preset %s invalid: %v", name, err)
		}
	}
	if len(Presets) < 2 {
		t.Error("expected at least skylake and haswell presets")
	}
}

func TestScaledPreservesRatios(t *testing.T) {
	base := SkylakeSilver4210()
	s := Scaled(base, 256)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Capacity ratios preserved (within way-rounding).
	ratio := float64(base.L2.SizeBytes) / float64(base.LLC.SizeBytes)
	got := float64(s.L2.SizeBytes) / float64(s.LLC.SizeBytes)
	if got < ratio*0.8 || got > ratio*1.2 {
		t.Errorf("L2/LLC ratio drifted: %f vs %f", got, ratio)
	}
	// Latencies, bandwidths, topology unchanged.
	if s.LocalLatencyNS != base.LocalLatencyNS || s.NodeBandwidth != base.NodeBandwidth {
		t.Error("scaling must not change latencies/bandwidths")
	}
	if s.LogicalCores() != base.LogicalCores() {
		t.Error("scaling must not change core counts")
	}
	// Fixed time costs scale down with the divisor.
	if s.ThreadSpawnNS >= base.ThreadSpawnNS {
		t.Error("fixed scheduler costs must scale with the divisor")
	}
	// Divisor 1 is the identity.
	if Scaled(base, 1) != base {
		t.Error("Scaled(m, 1) should return m unchanged")
	}
}

func TestWithNodes(t *testing.T) {
	base := SkylakeSilver4210()
	for _, n := range []int{1, 2, 4, 8} {
		m := WithNodes(base, n)
		if m.NUMANodes != n {
			t.Fatalf("NUMANodes = %d, want %d", m.NUMANodes, n)
		}
		if m.LogicalCores() != n*20 {
			t.Errorf("LogicalCores = %d", m.LogicalCores())
		}
		if err := m.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	// Interconnect grows with socket count.
	if WithNodes(base, 8).InterconnectGBps <= base.InterconnectGBps {
		t.Error("interconnect should grow with nodes")
	}
	if base.NUMANodes != 2 {
		t.Error("WithNodes mutated the base machine")
	}
}
