// Package machine models the hardware topology of a NUMA multicore system:
// sockets (NUMA nodes), physical cores, Hyper-Threaded logical cores, the
// private L1/L2 caches, the shared last-level cache, and DRAM latency and
// bandwidth for local versus remote accesses.
//
// The real paper runs on two Intel testbeds; Go cannot pin threads or place
// memory on NUMA nodes, so this package is the substitution: a declarative
// machine description consumed by the memory simulator (internal/memsim),
// the scheduler simulator (internal/sched), the cache simulator
// (internal/cachesim), and the analytic performance model
// (internal/perfmodel). Both of the paper's machines ship as presets with
// exactly the parameters reported in §4.1 and §4.5.
package machine

import (
	"errors"
	"fmt"
)

// Cache describes one cache level.
type Cache struct {
	// SizeBytes is the capacity. For shared caches this is the per-node
	// (per-socket) capacity.
	SizeBytes int
	// LineBytes is the cache line size (64 on all modern x86).
	LineBytes int
	// Assoc is the set associativity.
	Assoc int
	// LatencyNS is the load-to-use latency of a hit in nanoseconds.
	LatencyNS float64
}

// Sets returns the number of sets.
func (c Cache) Sets() int {
	if c.LineBytes == 0 || c.Assoc == 0 {
		return 0
	}
	return c.SizeBytes / (c.LineBytes * c.Assoc)
}

// Machine is an immutable description of a NUMA multicore system.
type Machine struct {
	// Name identifies the preset (e.g. "skylake-4210").
	Name string
	// Microarch is the microarchitecture family ("skylake", "haswell").
	Microarch string

	// NUMANodes is the number of sockets/NUMA nodes.
	NUMANodes int
	// CoresPerNode is the number of physical cores per node.
	CoresPerNode int
	// ThreadsPerCore is the SMT width (2 with Hyper-Threading).
	ThreadsPerCore int

	// L1 and L2 are private per physical core.
	L1, L2 Cache
	// LLC is shared among the cores of one node. LLCInclusive reports
	// whether the LLC is inclusive of L2 (Haswell) or non-inclusive
	// (Skylake); the distinction changes the effective private capacity and
	// drives Table 3.
	LLC          Cache
	LLCInclusive bool

	// DRAMBytes is the memory capacity per node.
	DRAMBytes int64

	// Local/Remote DRAM characteristics. Latency is per cache-line fetch.
	// LocalBandwidth and RemoteBandwidth are the *single-stream* (one core)
	// bandwidths in bytes/second; the Skylake preset encodes the paper's
	// measurement: 1GB sequential read in 0.06s local vs 0.40s remote
	// (§2.2). NodeBandwidth is the aggregate DRAM bandwidth of one node's
	// memory controller, shared by all cores streaming from that node.
	LocalLatencyNS   float64
	RemoteLatencyNS  float64
	LocalBandwidth   float64
	RemoteBandwidth  float64
	NodeBandwidth    float64
	InterconnectGBps float64 // total cross-node link bandwidth, both ways

	// ThreadMigrationNS is the cost of migrating a thread context to a core
	// on another NUMA node (context transfer via remote memory, §3.3.2).
	ThreadMigrationNS float64
	// ThreadSpawnNS is the cost of creating + binding one thread.
	ThreadSpawnNS float64
	// SyncBarrierNS is the cost of one barrier synchronisation across all
	// participating threads.
	SyncBarrierNS float64

	// CPUGHz converts core cycles to time for the compute component.
	CPUGHz float64
}

// PhysicalCores returns the total physical core count.
func (m *Machine) PhysicalCores() int { return m.NUMANodes * m.CoresPerNode }

// LogicalCores returns the total logical (Hyper-Thread) core count; this is
// the maximum number of hardware threads (§3.3.1).
func (m *Machine) LogicalCores() int {
	return m.NUMANodes * m.CoresPerNode * m.ThreadsPerCore
}

// LogicalPerNode returns the logical cores per NUMA node.
func (m *Machine) LogicalPerNode() int { return m.CoresPerNode * m.ThreadsPerCore }

// NodeOfLogical returns the NUMA node that logical core id belongs to.
// Logical cores are numbered node-major: node = id / LogicalPerNode().
func (m *Machine) NodeOfLogical(id int) int {
	if id < 0 || id >= m.LogicalCores() {
		panic(fmt.Sprintf("machine: logical core %d out of range [0,%d)", id, m.LogicalCores()))
	}
	return id / m.LogicalPerNode()
}

// PhysicalOfLogical returns the physical core that logical core id runs on.
// The two hyper-threads of physical core p are logical ids 2p and 2p+1
// (node-major numbering).
func (m *Machine) PhysicalOfLogical(id int) int {
	if id < 0 || id >= m.LogicalCores() {
		panic(fmt.Sprintf("machine: logical core %d out of range [0,%d)", id, m.LogicalCores()))
	}
	return id / m.ThreadsPerCore
}

// TunedPartitionBytes returns the cache-geometry-derived partition size the
// paper's tuning arrives at for this machine: a quarter of the private L2 on
// non-inclusive hierarchies, where evicted L2 lines survive in the LLC
// (Skylake: 1MB L2 → the §4.1 256KB), and half of it on inclusive
// hierarchies, where LLC evictions invalidate L2 and the partition working
// set must fit comfortably in the private level (Haswell: 256KB L2 → 128KB,
// the §4.5 contrast). Floored at 16 bytes for heavily scaled machines.
func (m *Machine) TunedPartitionBytes() int {
	frac := 4
	if m.LLCInclusive {
		frac = 2
	}
	pb := m.L2.SizeBytes / frac
	if pb < 16 {
		pb = 16
	}
	return pb
}

// SiblingOfLogical returns the other hyper-thread on the same physical core,
// or -1 when ThreadsPerCore == 1.
func (m *Machine) SiblingOfLogical(id int) int {
	if m.ThreadsPerCore != 2 {
		return -1
	}
	return id ^ 1
}

// Validate checks the description for consistency.
func (m *Machine) Validate() error {
	switch {
	case m.NUMANodes < 1:
		return errors.New("machine: need at least one NUMA node")
	case m.CoresPerNode < 1:
		return errors.New("machine: need at least one core per node")
	case m.ThreadsPerCore < 1 || m.ThreadsPerCore > 2:
		return fmt.Errorf("machine: threads per core must be 1 or 2, got %d", m.ThreadsPerCore)
	case m.L1.SizeBytes <= 0 || m.L2.SizeBytes <= 0 || m.LLC.SizeBytes <= 0:
		return errors.New("machine: cache sizes must be positive")
	case m.L1.SizeBytes > m.L2.SizeBytes:
		return errors.New("machine: L1 larger than L2")
	case m.L1.LineBytes != m.L2.LineBytes || m.L2.LineBytes != m.LLC.LineBytes:
		return errors.New("machine: cache line sizes must agree across levels")
	case m.LocalLatencyNS <= 0 || m.RemoteLatencyNS < m.LocalLatencyNS:
		return errors.New("machine: remote latency must be >= local latency > 0")
	case m.LocalBandwidth <= 0 || m.RemoteBandwidth <= 0 || m.RemoteBandwidth > m.LocalBandwidth:
		return errors.New("machine: bandwidths must be positive with remote <= local")
	case m.NodeBandwidth < m.LocalBandwidth:
		return errors.New("machine: node aggregate bandwidth must be >= single-stream bandwidth")
	case m.CPUGHz <= 0:
		return errors.New("machine: CPU frequency must be positive")
	}
	for _, c := range []Cache{m.L1, m.L2, m.LLC} {
		if c.Sets() <= 0 {
			return fmt.Errorf("machine: cache with %dB/%d-way/%dB lines has no sets", c.SizeBytes, c.Assoc, c.LineBytes)
		}
		if c.SizeBytes%(c.LineBytes*c.Assoc) != 0 {
			return fmt.Errorf("machine: cache size %d not divisible by way size", c.SizeBytes)
		}
	}
	return nil
}

// String returns a one-line summary.
func (m *Machine) String() string {
	return fmt.Sprintf("%s: %d nodes x %d cores x %d HT, L2 %dKB, LLC %.2fMB/node (%s)",
		m.Name, m.NUMANodes, m.CoresPerNode, m.ThreadsPerCore,
		m.L2.SizeBytes/1024, float64(m.LLC.SizeBytes)/(1<<20),
		map[bool]string{true: "inclusive", false: "non-inclusive"}[m.LLCInclusive])
}
