package validate

import (
	"math"
	"testing"

	"hipa/internal/gen"
	"hipa/internal/machine"
	"hipa/internal/perfmodel"
)

// The replay machine: Skylake scaled 1024x, matching a ~4-8K vertex graph
// the way the real machine matches the paper's graphs.
func replayMachine() *machine.Machine {
	return machine.Scaled(machine.SkylakeSilver4210(), 1024)
}

func TestReplayRemoteFractionAwareVsOblivious(t *testing.T) {
	m := replayMachine()
	g, err := gen.PowerLaw(gen.PowerLawConfig{Vertices: 4096, Edges: 60000, OutAlpha: 2.1, InAlpha: 0.9, Seed: 81, HotShuffle: true, MaxInShare: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	run := func(aware bool) *Replay {
		r, err := NewReplay(g, m, 256, 40, aware)
		if err != nil {
			t.Fatal(err)
		}
		r.RunIteration() // warm-up: exclude cold misses
		r.ResetCounters()
		r.RunIteration()
		return r
	}
	aware := run(true)
	obliv := run(false)
	fa := aware.Counters.RemoteFraction()
	fo := obliv.Counters.RemoteFraction()
	t.Logf("replayed remote fraction: aware=%.3f oblivious=%.3f", fa, fo)
	if fa >= fo {
		t.Fatalf("NUMA-aware replay remote fraction %.3f should be below oblivious %.3f", fa, fo)
	}
	// The analytic model's claims: aware ~10-15%, oblivious ~50%. The
	// trace-exact replay must land in the same neighbourhoods.
	if fa > 0.3 {
		t.Errorf("aware replay remote fraction %.3f too high (model predicts ~0.10)", fa)
	}
	if fo < 0.35 || fo > 0.65 {
		t.Errorf("oblivious replay remote fraction %.3f outside ~0.5 neighbourhood", fo)
	}
}

func TestReplayRandomLevelsMatchClassifier(t *testing.T) {
	m := replayMachine()
	g, err := gen.PowerLaw(gen.PowerLawConfig{Vertices: 4096, Edges: 60000, OutAlpha: 2.1, InAlpha: 0.9, Seed: 82, HotShuffle: true, MaxInShare: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name      string
		partBytes int
		threads   int
	}{
		// 256B partitions (the scaled 256KB optimum) on all 40 threads:
		// working set 384B fits the HT-shared 512B L2 slice.
		{"fits-L2", 256, 40},
		// 2KB partitions (scaled 2MB): working set 3KB spills the 1KB L2;
		// the aggregate demand is capped by the attribute footprint.
		{"spills", 2048, 40},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			r, err := NewReplay(g, m, c.partBytes, c.threads, true)
			if err != nil {
				t.Fatal(err)
			}
			r.RunIteration()
			r.ResetCounters()
			r.RunIteration()
			private, llc, dram, err := r.RandomFractions()
			if err != nil {
				t.Fatal(err)
			}
			cap := int64(g.NumVertices()) * 4 * 2 / int64(m.NUMANodes)
			fL2, fLLC, fDRAM := perfmodel.ClassifyPartitionRandom(m, int64(c.partBytes), 1.5, true, 20, cap)
			t.Logf("replay: private=%.2f llc=%.2f dram=%.2f | model: L2=%.2f LLC=%.2f DRAM=%.2f",
				private, llc, dram, fL2, fLLC, fDRAM)
			// The model is a capacity argument, the replay an exact LRU
			// simulation that exploits access skew; assert agreement on the
			// two behaviours the experiments depend on: whether random
			// accesses stay (mostly) out of DRAM, and whether the private
			// caches stop being sufficient when the model says they spill.
			if math.Abs(dram-fDRAM) > 0.35 {
				t.Errorf("DRAM fraction: replay %.2f vs model %.2f", dram, fDRAM)
			}
			if fL2 == 1 && private < 0.6 {
				t.Errorf("model says L2-resident but replay private fraction is %.2f", private)
			}
			if fL2 == 0 && llc+dram < 0.25 {
				t.Errorf("model says spilled but replay kept %.2f private", private)
			}
		})
	}
}

func TestReplaySmallPartitionsStayPrivate(t *testing.T) {
	m := replayMachine()
	g, err := gen.Uniform(2048, 20000, 83)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReplay(g, m, 128, 20, true) // 32-vertex partitions, unshared cores
	if err != nil {
		t.Fatal(err)
	}
	r.RunIteration()
	r.ResetCounters()
	r.RunIteration()
	private, llc, dram, err := r.RandomFractions()
	if err != nil {
		t.Fatal(err)
	}
	if private < 0.5 {
		t.Errorf("tiny partitions should keep random accesses in private caches: private=%.2f llc=%.2f dram=%.2f",
			private, llc, dram)
	}
}

func TestReplayCountsSomething(t *testing.T) {
	m := replayMachine()
	g, err := gen.Uniform(1024, 8000, 84)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReplay(g, m, 256, 8, false)
	if err != nil {
		t.Fatal(err)
	}
	r.RunIteration()
	if r.Counters.TotalBytes() == 0 {
		t.Fatal("cold run recorded no DRAM traffic")
	}
	if _, _, _, err := r.RandomFractions(); err != nil {
		t.Fatal(err)
	}
}

func argmax3(a, b, c float64) int {
	switch {
	case a >= b && a >= c:
		return 0
	case b >= c:
		return 1
	default:
		return 2
	}
}
