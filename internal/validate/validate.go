// Package validate cross-checks the analytic performance model
// (internal/perfmodel and the builders in internal/engines/common) against
// the exact substrates: it replays the actual memory reference stream of a
// partition-centric scatter-gather iteration — address by address, from the
// real layout over real memsim regions — through the trace-exact cache
// simulator (internal/cachesim) and the NUMA traffic counters
// (internal/memsim), and reports the measured cache-level and local/remote
// distributions for comparison with the model's classification.
package validate

import (
	"fmt"

	"hipa/internal/cachesim"
	"hipa/internal/graph"
	"hipa/internal/layout"
	"hipa/internal/machine"
	"hipa/internal/memsim"
	"hipa/internal/partition"
	"hipa/internal/sched"
)

// Replay drives one graph's scatter-gather access pattern through the exact
// simulators.
type Replay struct {
	mach   *machine.Machine
	hier   *partition.Hierarchy
	lay    *layout.Layout
	lookup *partition.LookupTable

	space *memsim.Space
	cache *cachesim.System

	// Simulated regions for every array the engines touch.
	ranks, acc, bins *memsim.Region
	msgSrcR, msgDstR *memsim.Region
	intraR           *memsim.Region
	numaAware        bool
	threadLogical    []int // logical core per thread
	threadNode       []int
	// binSlot maps a global message index to its position in the bins
	// region, which is laid out destination-major so destination-local
	// placement is a contiguous slice per node. dstSlot does the same for
	// the message-destination array read during gather.
	binSlot []int64
	dstSlot []int64

	// Measured DRAM traffic (cache-miss line fills only).
	Counters memsim.Counters
	// RandomLevels counts the cache level satisfying each partition-random
	// access (the accumulator updates the model classifies).
	RandomLevels [4]int64 // indexed by cachesim.Level
}

// NewReplay prepares the substrates for graph g on machine m with the given
// partition size and thread count. numaAware selects HiPa-style placement
// (sliced regions, pinned threads) versus oblivious (interleaved regions,
// random thread placement).
func NewReplay(g *graph.Graph, m *machine.Machine, partitionBytes, threads int, numaAware bool) (*Replay, error) {
	nodes := m.NUMANodes
	if threads < nodes {
		threads = nodes
	}
	threads = (threads / nodes) * nodes
	hier, err := partition.Build(g, partition.Config{
		PartitionBytes: partitionBytes,
		BytesPerVertex: 4,
		NumNodes:       nodes,
		GroupsPerNode:  threads / nodes,
	})
	if err != nil {
		return nil, err
	}
	lay, err := layout.Build(g, hier, true)
	if err != nil {
		return nil, err
	}
	r := &Replay{
		mach:      m,
		hier:      hier,
		lay:       lay,
		lookup:    partition.BuildLookup(hier),
		space:     memsim.NewSpace(m),
		cache:     cachesim.NewSystem(m),
		numaAware: numaAware,
	}

	// Placement policies: HiPa slices per-vertex arrays by partition
	// ownership and places per-message arrays with the destination
	// partition; the oblivious engines interleave everything.
	n := int64(g.NumVertices())
	// Bins are laid out destination-major (dst-partition order) so that
	// destination-local placement is a contiguous slice per node; binSlot
	// maps each global message index to its dst-major position.
	r.binSlot = make([]int64, lay.NumMessages())
	r.dstSlot = make([]int64, len(lay.MsgDst))
	var binBounds, dstBounds []int64
	{
		var cum, dcum int64
		node := 0
		for _, bi := range orderBlocksByDst(lay) {
			b := lay.Blocks[bi]
			if dn := int(r.lookup.PartNode[b.DstPart]); dn != node {
				binBounds = append(binBounds, cum*4)
				dstBounds = append(dstBounds, dcum*4)
				node = dn
			}
			for m := b.MsgStart; m < b.MsgEnd; m++ {
				r.binSlot[m] = cum
				cum++
				for di := lay.MsgDstOff[m]; di < lay.MsgDstOff[m+1]; di++ {
					r.dstSlot[di] = dcum
					dcum++
				}
			}
		}
		binBounds = append(binBounds, cum*4)
		dstBounds = append(dstBounds, dcum*4)
	}
	// Per-source-ordered arrays (message sources, intra-edge lists) are
	// owned by the source partition's node: boundaries where the source
	// partition's node changes.
	var srcBounds, intraBounds []int64
	{
		node := 0
		for _, b := range lay.Blocks {
			if sn := int(r.lookup.PartNode[b.SrcPart]); sn != node {
				srcBounds = append(srcBounds, b.MsgStart*4)
				node = sn
			}
		}
		srcBounds = append(srcBounds, lay.NumMessages()*4)
		node = 0
		for _, na := range hier.Nodes[1:] {
			intraBounds = append(intraBounds, lay.IntraOff[na.VertexLow]*4)
			_ = node
		}
		intraBounds = append(intraBounds, int64(len(lay.IntraDst))*4)
	}
	var vertexPolicy, binPolicy, srcPolicy, dstPolicy, intraPolicy memsim.Placement = memsim.Interleave{}, memsim.Interleave{}, memsim.Interleave{}, memsim.Interleave{}, memsim.Interleave{}
	if numaAware {
		vertexPolicy = memsim.Sliced{Bounds: hier.RankBoundsBytes(4)}
		binPolicy = memsim.Sliced{Bounds: binBounds}
		srcPolicy = memsim.Sliced{Bounds: srcBounds}
		dstPolicy = memsim.Sliced{Bounds: dstBounds}
		intraPolicy = memsim.Sliced{Bounds: intraBounds}
	}
	alloc := func(name string, size int64, p memsim.Placement) *memsim.Region {
		if size <= 0 {
			size = 1
		}
		return r.space.MustAlloc(name, size, p)
	}
	r.ranks = alloc("ranks", n*4, vertexPolicy)
	r.acc = alloc("acc", n*4, vertexPolicy)
	r.bins = alloc("bins", lay.NumMessages()*4, binPolicy)
	r.msgSrcR = alloc("msgsrc", lay.NumMessages()*4, srcPolicy)
	r.msgDstR = alloc("msgdst", int64(len(lay.MsgDst))*4, dstPolicy)
	r.intraR = alloc("intra", int64(len(lay.IntraDst))*4, intraPolicy)

	// Thread placement via the scheduler simulation.
	sc := sched.New(m, 1)
	var pool []*sched.Thread
	if numaAware {
		pool, _, err = sc.RunPinnedThreads(threads)
		if err != nil {
			return nil, err
		}
	} else {
		pool = sc.SpawnN(threads, sched.PlacementRandom)
	}
	for _, t := range pool {
		r.threadLogical = append(r.threadLogical, t.Logical)
		r.threadNode = append(r.threadNode, t.Node(m))
	}
	return r, nil
}

// orderBlocksByDst returns block indices grouped by destination partition in
// partition order — the order bins would be laid out for destination-local
// placement.
func orderBlocksByDst(lay *layout.Layout) []int32 {
	var out []int32
	for q := 0; q < lay.NumPartitions; q++ {
		out = append(out, lay.DstBlocks[q]...)
	}
	return out
}

// access simulates one 4-byte reference by thread t at offset within region
// reg, updating the cache hierarchy, the DRAM counters (on miss), and the
// random-level histogram when isRandom.
func (r *Replay) access(t int, reg *memsim.Region, offset int64, isRandom bool) {
	logical := r.threadLogical[t]
	lv := r.cache.Access(logical, reg.Addr(offset))
	if lv == cachesim.Memory {
		r.Counters.Record(reg, offset, r.mach.L1.LineBytes, r.threadNode[t])
	}
	if isRandom {
		r.RandomLevels[lv]++
	}
}

// RunIteration replays one full scatter-gather iteration. Threads are
// replayed round-robin partition-phase-interleaved to approximate
// concurrent cache occupancy (each thread's accesses hit its own private
// caches; the shared LLC sees the union).
func (r *Replay) RunIteration() {
	lay := r.lay
	// Scatter phase: interleave threads partition by partition.
	r.forEachThreadPartition(func(t, p int) {
		part := r.hier.Partitions[p]
		for v := int(part.VertexStart); v < int(part.VertexEnd); v++ {
			r.access(t, r.ranks, int64(v)*4, false)
			for ii := lay.IntraOff[v]; ii < lay.IntraOff[v+1]; ii++ {
				r.access(t, r.intraR, ii*4, false)
				r.access(t, r.acc, int64(lay.IntraDst[ii])*4, true)
			}
		}
		for bi := lay.SrcBlockStart[p]; bi < lay.SrcBlockEnd[p]; bi++ {
			b := lay.Blocks[bi]
			for m := b.MsgStart; m < b.MsgEnd; m++ {
				r.access(t, r.msgSrcR, m*4, false)
				r.access(t, r.ranks, int64(lay.MsgSrc[m])*4, false)
				r.access(t, r.bins, r.binSlot[m]*4, false)
			}
		}
	})
	// Gather phase.
	r.forEachThreadPartition(func(t, p int) {
		for _, bi := range lay.DstBlocks[p] {
			b := lay.Blocks[bi]
			for m := b.MsgStart; m < b.MsgEnd; m++ {
				r.access(t, r.bins, r.binSlot[m]*4, false)
				for di := lay.MsgDstOff[m]; di < lay.MsgDstOff[m+1]; di++ {
					r.access(t, r.msgDstR, r.dstSlot[di]*4, false)
					r.access(t, r.acc, int64(lay.MsgDst[di])*4, true)
				}
			}
		}
		part := r.hier.Partitions[p]
		for v := int(part.VertexStart); v < int(part.VertexEnd); v++ {
			r.access(t, r.acc, int64(v)*4, false)
			r.access(t, r.ranks, int64(v)*4, false)
		}
	})
}

// forEachThreadPartition visits (thread, partition) pairs interleaved
// round-robin across threads, approximating concurrent execution.
func (r *Replay) forEachThreadPartition(fn func(t, p int)) {
	nThreads := len(r.threadLogical)
	cursors := make([]int, nThreads)
	for {
		progressed := false
		for t := 0; t < nThreads; t++ {
			gr := r.hier.Groups[t%len(r.hier.Groups)]
			p := gr.PartStart + cursors[t]
			if p >= gr.PartEnd {
				continue
			}
			fn(t%len(r.hier.Groups), p)
			cursors[t]++
			progressed = true
		}
		if !progressed {
			return
		}
	}
}

// ResetCounters clears the measured traffic (keep the cache state warm to
// exclude cold misses).
func (r *Replay) ResetCounters() {
	r.Counters = memsim.Counters{}
	r.RandomLevels = [4]int64{}
}

// RandomFractions returns the measured fraction of partition-random
// accesses satisfied at (private cache, LLC, DRAM) — comparable to
// perfmodel.ClassifyPartitionRandom's (fL2, fLLC, fDRAM).
func (r *Replay) RandomFractions() (private, llc, dram float64, err error) {
	total := r.RandomLevels[0] + r.RandomLevels[1] + r.RandomLevels[2] + r.RandomLevels[3]
	if total == 0 {
		return 0, 0, 0, fmt.Errorf("validate: no random accesses recorded")
	}
	private = float64(r.RandomLevels[cachesim.HitL1]+r.RandomLevels[cachesim.HitL2]) / float64(total)
	llc = float64(r.RandomLevels[cachesim.HitLLC]) / float64(total)
	dram = float64(r.RandomLevels[cachesim.Memory]) / float64(total)
	return private, llc, dram, nil
}
