// Package execbuf is the scratch-memory arena behind the engines' Exec hot
// path. Every buffer the iterative scatter-gather phase mutates — the rank
// vector, the per-vertex accumulators, the compressed message bins, the
// vertex-centric contribution array, and the padded per-thread partials —
// is carved out of one Arena that is acquired when Exec starts and released
// when it returns. Inside the superstep loop nothing allocates: the steady
// state runs at zero heap allocations per iteration (asserted by
// testing.AllocsPerRun regression tests in enginetest).
//
// Arenas are pooled per Prepared artifact, so repeated Exec calls against
// one artifact (hipapr -repeat, hipabench sweeps) reuse the same memory
// instead of re-allocating O(V + messages) float32 buffers per run, and
// concurrent Execs each draw their own arena without contention beyond one
// mutex acquire/release per run.
package execbuf

import (
	"runtime"
	"sync"
	"sync/atomic"

	"hipa/internal/obs"
)

// PadF64 is a float64 padded to its own cache line, used for per-thread
// partial sums (dangling mass, L∞ residuals) so neighbouring threads never
// false-share.
type PadF64 struct {
	V float64
	_ [7]int64
}

// PadU64 is an atomic uint64 padded to its own cache line — the publication
// slot of the barrierless engine (rank residual bits, round counters,
// dangling-mass bits), written by one worker and read by all.
type PadU64 struct {
	V atomic.Uint64
	_ [7]uint64
}

// Arena owns the mutable scratch buffers of one Exec. A zero Arena is
// ready to use; buffers are allocated on first request and kept for reuse.
// An Arena is not safe for concurrent use — each concurrent Exec must hold
// its own (see Pool).
type Arena struct {
	ranks, acc, bins, contrib []float32
	partials, residuals       []PadF64
	// Frontier scratch (active-set engines): per-partition converged bitmap,
	// active work list, residuals, iteration counts, and dangling masses.
	bitmap     []uint64
	worklist   []int32
	partIters  []int32
	partCounts []int32
	partRes    []float32
	partDang   []float64
	// Barrierless scratch: atomic rank bits and padded publication slots.
	bits    []uint32
	atomics []PadU64
	// Blocked (rank-B) scratch of the batched PPR engine: two vertex-
	// interleaved rank blocks (double-buffered), the B-wide accumulator
	// block, the sparse per-column teleport addends, the per-partition
	// per-column dangling buffer, the per-thread per-column residual lanes,
	// and the active-column bookkeeping.
	ranksBlockA []float32
	ranksBlockB []float32
	accBlock    []float32
	seedAdd     []float32
	partDangB   []float64
	colLanes    []float64
	cols        []int32
	colIters    []int32
	grows       int
	// owner is the Pool that checked this arena out (nil while free or
	// never pooled). Put settles the checkout with the owner, so an arena
	// released into a different pool — a dynamic reload moving work between
	// artifacts mid-flight — decrements the pool that issued it, and a
	// double Put cannot drive any counter negative.
	owner *Pool
}

func growF32(buf *[]float32, n int, grows *int) []float32 {
	if cap(*buf) < n {
		*buf = make([]float32, n)
		*grows++
	}
	return (*buf)[:n]
}

// Ranks returns the n-element rank buffer. Contents are unspecified; the
// caller fills it (InitRanks) before the first iteration.
func (a *Arena) Ranks(n int) []float32 { return growF32(&a.ranks, n, &a.grows) }

// Acc returns the n-element per-vertex accumulator buffer, zeroed — the
// scatter phase adds into it and the gather phase re-zeroes it, so a zero
// start is the loop invariant.
func (a *Arena) Acc(n int) []float32 {
	s := growF32(&a.acc, n, &a.grows)
	clear(s)
	return s
}

// Bins returns the n-element compressed-message buffer, zeroed. Every
// message is rewritten by each scatter phase; the zero fill only guards the
// first gather of a run against stale values from a previous Exec.
func (a *Arena) Bins(n int) []float32 {
	s := growF32(&a.bins, n, &a.grows)
	clear(s)
	return s
}

// Contrib returns the n-element vertex-centric contribution buffer, zeroed.
func (a *Arena) Contrib(n int) []float32 {
	s := growF32(&a.contrib, n, &a.grows)
	clear(s)
	return s
}

// Partials returns the per-thread dangling-mass partials, zeroed.
func (a *Arena) Partials(threads int) []PadF64 {
	s := a.growPad(&a.partials, threads)
	clear(s)
	return s
}

// Residuals returns the per-thread L∞ residual partials, zeroed.
func (a *Arena) Residuals(threads int) []PadF64 {
	s := a.growPad(&a.residuals, threads)
	clear(s)
	return s
}

func (a *Arena) growPad(buf *[]PadF64, n int) []PadF64 {
	if cap(*buf) < n {
		*buf = make([]PadF64, n)
		a.grows++
	}
	return (*buf)[:n]
}

// Bitmap returns the converged-partition bitmap covering n partitions (one
// bit each), zeroed: no partition starts converged.
func (a *Arena) Bitmap(n int) []uint64 {
	words := (n + 63) / 64
	if cap(a.bitmap) < words {
		a.bitmap = make([]uint64, words)
		a.grows++
	}
	s := a.bitmap[:words]
	clear(s)
	return s
}

// WorkList returns the n-element active-partition work list. Contents are
// unspecified; the frontier fills it with the initial (dense) active set.
func (a *Arena) WorkList(n int) []int32 {
	if cap(a.worklist) < n {
		a.worklist = make([]int32, n)
		a.grows++
	}
	return a.worklist[:n]
}

// PartIters returns the per-partition executed-iteration counters, zeroed —
// the active-set input of the traffic model (platform.PartitionRun.PartIters).
func (a *Arena) PartIters(n int) []int32 {
	if cap(a.partIters) < n {
		a.partIters = make([]int32, n)
		a.grows++
	}
	s := a.partIters[:n]
	clear(s)
	return s
}

// PartCounts returns the per-partition active-vertex counters, zeroed —
// scratch of the vertex-granular delta engine's frontier bookkeeping.
func (a *Arena) PartCounts(n int) []int32 {
	if cap(a.partCounts) < n {
		a.partCounts = make([]int32, n)
		a.grows++
	}
	s := a.partCounts[:n]
	clear(s)
	return s
}

// PartResiduals returns the per-partition L∞ residual buffer, zeroed.
func (a *Arena) PartResiduals(n int) []float32 {
	s := growF32(&a.partRes, n, &a.grows)
	clear(s)
	return s
}

// PartDangling returns the per-partition dangling-mass buffer, zeroed. A
// converged partition's entry stays frozen at its last written value, which
// is exactly its dangling contribution under its frozen ranks.
func (a *Arena) PartDangling(n int) []float64 {
	if cap(a.partDang) < n {
		a.partDang = make([]float64, n)
		a.grows++
	}
	s := a.partDang[:n]
	clear(s)
	return s
}

// RanksBlockPair returns the two n-element vertex-interleaved rank blocks
// of the batched engine (vertex v's B columns live at [v*B, v*B+B)); the
// gather phase reads one and writes the other, swapping between iterations.
// Contents are unspecified; the caller seeds every column's restart
// distribution before the first iteration.
func (a *Arena) RanksBlockPair(n int) (cur, next []float32) {
	return growF32(&a.ranksBlockA, n, &a.grows), growF32(&a.ranksBlockB, n, &a.grows)
}

// AccBlock returns the n-element B-wide accumulator block, zeroed — like
// Acc, the scatter/decode passes add into it and the rank recompute
// re-zeroes it, so a zero start is the loop invariant.
func (a *Arena) AccBlock(n int) []float32 {
	s := growF32(&a.accBlock, n, &a.grows)
	clear(s)
	return s
}

// SeedAdd returns the n-element per-vertex per-column teleport addend
// block, zeroed: non-zero only at seed vertices of personalized columns,
// refreshed sparsely each iteration by the dangling reduce.
func (a *Arena) SeedAdd(n int) []float32 {
	s := growF32(&a.seedAdd, n, &a.grows)
	clear(s)
	return s
}

// PartDanglingBlock returns the per-partition per-column dangling buffer
// (partitions × B entries), zeroed. A frozen column's entries stay at their
// last written values — exactly that column's dangling contribution under
// its frozen ranks.
func (a *Arena) PartDanglingBlock(n int) []float64 {
	if cap(a.partDangB) < n {
		a.partDangB = make([]float64, n)
		a.grows++
	}
	s := a.partDangB[:n]
	clear(s)
	return s
}

// ColLanes returns the per-thread per-column L∞ residual lanes (threads ×
// stride entries, the caller padding the stride to a cache-line multiple so
// neighbouring threads never false-share), zeroed.
func (a *Arena) ColLanes(n int) []float64 {
	if cap(a.colLanes) < n {
		a.colLanes = make([]float64, n)
		a.grows++
	}
	s := a.colLanes[:n]
	clear(s)
	return s
}

// Cols returns the n-element active-column list. Contents are unspecified;
// the caller fills it with the initially dense column set.
func (a *Arena) Cols(n int) []int32 {
	if cap(a.cols) < n {
		a.cols = make([]int32, n)
		a.grows++
	}
	return a.cols[:n]
}

// ColIters returns the per-column executed-iteration counters, zeroed.
func (a *Arena) ColIters(n int) []int32 {
	if cap(a.colIters) < n {
		a.colIters = make([]int32, n)
		a.grows++
	}
	s := a.colIters[:n]
	clear(s)
	return s
}

// RankBits returns the n-element atomic rank buffer of the barrierless
// engine: uint32 views of float32 ranks, published with atomic stores and
// pulled with atomic loads. Contents are unspecified; the caller seeds the
// initial distribution.
func (a *Arena) RankBits(n int) []uint32 {
	if cap(a.bits) < n {
		a.bits = make([]uint32, n)
		a.grows++
	}
	return a.bits[:n]
}

// Atomics returns n cache-line-padded atomic slots, zeroed — the
// barrierless engine's per-worker publication lanes (residual bits, round
// counters, dangling-mass bits share one call, sliced by the caller).
func (a *Arena) Atomics(n int) []PadU64 {
	if cap(a.atomics) < n {
		a.atomics = make([]PadU64, n)
		a.grows++
	}
	s := a.atomics[:n]
	for i := range s {
		s[i].V.Store(0)
	}
	return s
}

// Grows reports how many times any buffer was (re)allocated over the
// arena's lifetime. A warm arena serving same-shaped Execs stays constant —
// the regression tests assert repeated Exec calls do not grow it.
func (a *Arena) Grows() int { return a.grows }

// Footprint returns the arena's total buffer capacity in bytes.
func (a *Arena) Footprint() int64 {
	f32 := cap(a.ranks) + cap(a.acc) + cap(a.bins) + cap(a.contrib) + cap(a.partRes) +
		cap(a.ranksBlockA) + cap(a.ranksBlockB) + cap(a.accBlock) + cap(a.seedAdd)
	pad := cap(a.partials) + cap(a.residuals) + cap(a.atomics)
	i32 := cap(a.worklist) + cap(a.partIters) + cap(a.partCounts) + cap(a.bits) +
		cap(a.cols) + cap(a.colIters)
	i64 := cap(a.bitmap) + cap(a.partDang) + cap(a.partDangB) + cap(a.colLanes)
	return int64(f32)*4 + int64(pad)*64 + int64(i32)*4 + int64(i64)*8
}

// Registry metric families exported by the arena pools. Every Pool reports
// into the same process-wide series: per-artifact traffic stays available
// via Pool.Stats, while /metrics shows the process view.
const (
	MetricArenasCreated     = "hipa_execbuf_arenas_created_total"
	MetricArenasReused      = "hipa_execbuf_arenas_reused_total"
	MetricArenasOutstanding = "hipa_execbuf_arenas_outstanding"
)

var (
	metricsOnce      sync.Once
	createdCounter   *obs.Counter
	reusedCounter    *obs.Counter
	outstandingGauge *obs.Gauge
)

// initMetrics resolves the registry handles once; Get/Put call it on every
// acquisition, but the steady-state cost is one atomic load inside
// sync.Once — no allocation, so the per-Exec allocation budget is unmoved.
func initMetrics() {
	metricsOnce.Do(func() {
		reg := obs.Default()
		reg.SetHelp(MetricArenasCreated, "Fresh Exec scratch arenas allocated because a pool's free list was empty.")
		reg.SetHelp(MetricArenasReused, "Exec scratch arena acquisitions served warm from a pool's free list.")
		reg.SetHelp(MetricArenasOutstanding, "Exec scratch arenas currently held by a running Exec.")
		createdCounter = reg.Counter(MetricArenasCreated)
		reusedCounter = reg.Counter(MetricArenasReused)
		outstandingGauge = reg.Gauge(MetricArenasOutstanding)
	})
}

// GlobalStats reports the process-wide arena traffic summed over every
// pool, as exported to the registry (hipabench includes it in its JSON
// summary).
func GlobalStats() PoolStats {
	initMetrics()
	return PoolStats{Created: createdCounter.Value(), Reused: reusedCounter.Value()}
}

// Outstanding reports how many arenas are currently held by running Execs
// across every pool.
func Outstanding() int64 {
	initMetrics()
	return int64(outstandingGauge.Value())
}

// PoolStats counts arena traffic through a Pool.
type PoolStats struct {
	// Created is the number of fresh arenas the pool handed out because the
	// free list was empty (equals the peak Exec concurrency seen).
	Created int64
	// Reused is the number of Get calls served from the free list.
	Reused int64
	// Outstanding is the number of arenas this pool has checked out to
	// running Execs and not yet seen returned (to any pool).
	Outstanding int64
	// Freed is the number of arenas dropped for garbage collection because
	// a Put or MoveTo found the free list already at its cap.
	Freed int64
}

// Pool is a free list of Arenas, one per Prepared artifact. Get/Put are
// safe for concurrent use; sequential Execs against one artifact recycle a
// single arena, concurrent Execs fan out to as many arenas as run at once.
//
// The free list is bounded: once a concurrency burst subsides, Put drops
// arenas beyond the cap (SetCap; default GOMAXPROCS) instead of pinning the
// burst's peak memory for the artifact's lifetime.
type Pool struct {
	mu    sync.Mutex
	free  []*Arena
	cap   int // 0 = default (GOMAXPROCS at Put time)
	stats PoolStats
}

// SetCap bounds the pool's free list to n warm arenas; excess arenas are
// dropped on Put/MoveTo. n <= 0 restores the default bound, GOMAXPROCS —
// the most Execs the runtime can actually run at once, so steady-state
// serving never allocates, while burst overshoot is returned to the GC.
func (p *Pool) SetCap(n int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n <= 0 {
		n = 0
	}
	p.cap = n
}

// Cap reports the pool's effective free-list bound.
func (p *Pool) Cap() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.capLocked()
}

func (p *Pool) capLocked() int {
	if p.cap > 0 {
		return p.cap
	}
	return runtime.GOMAXPROCS(0)
}

// Get pops a warm arena, or creates one when the free list is empty.
func (p *Pool) Get() *Arena {
	initMetrics()
	outstandingGauge.Add(1)
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats.Outstanding++
	var a *Arena
	if n := len(p.free); n > 0 {
		a = p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		p.stats.Reused++
		reusedCounter.Inc()
	} else {
		a = &Arena{}
		p.stats.Created++
		createdCounter.Inc()
	}
	a.owner = p
	return a
}

// Put returns an arena to the free list for the next Exec, dropping it
// instead when the free list is already at the pool's cap. The checkout is
// settled with the pool that issued the arena (its Get may have come from a
// previous artifact's pool when a reload swapped artifacts mid-flight), so
// per-pool Outstanding and the process gauge stay exact; an arena that is
// not checked out (double Put) adjusts no counter.
func (p *Pool) Put(a *Arena) {
	if a == nil {
		return
	}
	initMetrics()
	if owner := a.owner; owner != nil {
		a.owner = nil
		outstandingGauge.Add(-1)
		owner.mu.Lock()
		owner.stats.Outstanding--
		owner.mu.Unlock()
	}
	p.mu.Lock()
	if len(p.free) < p.capLocked() {
		p.free = append(p.free, a)
	} else {
		p.stats.Freed++
	}
	p.mu.Unlock()
}

// MoveTo drains p's free list into dst, preserving warm buffers across an
// artifact transition (common.Prepared.Advance hands the pool of the old
// version's artifact to the new one, so a dynamic replay's Execs keep
// recycling one arena instead of re-allocating O(V) buffers per batch).
// Arenas beyond dst's cap are dropped. Traffic counters stay with their
// pools; arenas held by running Execs are unaffected — they settle their
// checkout with p whenever and wherever they are Put.
func (p *Pool) MoveTo(dst *Pool) {
	if p == dst || p == nil || dst == nil {
		return
	}
	p.mu.Lock()
	moved := p.free
	p.free = nil
	p.mu.Unlock()
	if len(moved) == 0 {
		return
	}
	dst.mu.Lock()
	room := dst.capLocked() - len(dst.free)
	if room < 0 {
		room = 0
	}
	if room > len(moved) {
		room = len(moved)
	}
	dst.free = append(dst.free, moved[:room]...)
	dst.stats.Freed += int64(len(moved) - room)
	dst.mu.Unlock()
}

// Stats returns a snapshot of the pool's traffic counters.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}
