package execbuf

import (
	"sync"
	"testing"
)

func TestArenaReusesCapacity(t *testing.T) {
	var a Arena
	r1 := a.Ranks(100)
	if len(r1) != 100 {
		t.Fatalf("len = %d, want 100", len(r1))
	}
	r1[0] = 42
	r2 := a.Ranks(50)
	if &r1[0] != &r2[0] {
		t.Error("shrinking request did not reuse the backing array")
	}
	if a.Grows() != 1 {
		t.Errorf("grows = %d, want 1 (one allocation serves both requests)", a.Grows())
	}
	if a.Ranks(200); a.Grows() != 2 {
		t.Errorf("grows = %d after larger request, want 2", a.Grows())
	}
}

func TestArenaZeroesScratchBuffers(t *testing.T) {
	var a Arena
	for _, f := range []func(int) []float32{a.Acc, a.Bins, a.Contrib} {
		s := f(64)
		for i := range s {
			s[i] = 1
		}
	}
	for name, f := range map[string]func(int) []float32{"acc": a.Acc, "bins": a.Bins, "contrib": a.Contrib} {
		for i, v := range f(64) {
			if v != 0 {
				t.Fatalf("%s[%d] = %g on reuse, want 0", name, i, v)
			}
		}
	}
	p := a.Partials(4)
	p[2].V = 7
	if got := a.Partials(4); got[2].V != 0 {
		t.Errorf("partials not zeroed on reuse: %g", got[2].V)
	}
	r := a.Residuals(4)
	r[1].V = 3
	if got := a.Residuals(4); got[1].V != 0 {
		t.Errorf("residuals not zeroed on reuse: %g", got[1].V)
	}
}

func TestArenaRanksNotZeroed(t *testing.T) {
	// Ranks are fully overwritten by the caller; the arena must not pay an
	// extra clear pass for them.
	var a Arena
	r := a.Ranks(8)
	r[3] = 5
	if got := a.Ranks(8); got[3] != 5 {
		t.Error("ranks buffer was cleared; contract says contents are unspecified but untouched")
	}
}

func TestArenaFootprint(t *testing.T) {
	var a Arena
	a.Ranks(100)
	a.Partials(2)
	want := int64(100*4 + 2*64)
	if got := a.Footprint(); got != want {
		t.Errorf("footprint = %d, want %d", got, want)
	}
}

func TestPoolRecyclesSequentially(t *testing.T) {
	var p Pool
	a := p.Get()
	a.Ranks(10)
	p.Put(a)
	b := p.Get()
	if a != b {
		t.Error("sequential Get after Put returned a different arena")
	}
	s := p.Stats()
	if s.Created != 1 || s.Reused != 1 {
		t.Errorf("stats = %+v, want Created=1 Reused=1", s)
	}
}

func TestPoolConcurrentGetsAreDistinct(t *testing.T) {
	var p Pool
	const n = 8
	arenas := make([]*Arena, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			arenas[i] = p.Get()
		}(i)
	}
	wg.Wait()
	seen := map[*Arena]bool{}
	for _, a := range arenas {
		if seen[a] {
			t.Fatal("two concurrent Gets shared one arena")
		}
		seen[a] = true
	}
	if s := p.Stats(); s.Created != n {
		t.Errorf("created = %d, want %d", s.Created, n)
	}
	for _, a := range arenas {
		p.Put(a)
	}
	if got := p.Get(); !seen[got] {
		t.Error("Get after Put returned an unknown arena")
	}
}

func TestPoolPutNilIsNoop(t *testing.T) {
	var p Pool
	p.Put(nil)
	if p.Get() == nil {
		t.Fatal("Get returned nil")
	}
}

// TestGlobalStatsTrackPoolTraffic checks the process-wide registry mirror:
// pool traffic shows up in GlobalStats/Outstanding as deltas (the series are
// shared by every pool in the process, so only deltas are assertable).
func TestGlobalStatsTrackPoolTraffic(t *testing.T) {
	base := GlobalStats()
	baseOut := Outstanding()

	var p Pool
	a := p.Get() // fresh: created+1, outstanding+1
	if got := GlobalStats(); got.Created != base.Created+1 || got.Reused != base.Reused {
		t.Errorf("after Get: global delta = %+v from %+v, want one created", got, base)
	}
	if got := Outstanding(); got != baseOut+1 {
		t.Errorf("outstanding = %d, want %d", got, baseOut+1)
	}
	p.Put(a)
	if got := Outstanding(); got != baseOut {
		t.Errorf("outstanding after Put = %d, want %d", got, baseOut)
	}
	b := p.Get() // warm: reused+1
	if b != a {
		t.Error("sequential Get did not recycle the arena")
	}
	if got := GlobalStats(); got.Created != base.Created+1 || got.Reused != base.Reused+1 {
		t.Errorf("after recycle: global delta = %+v from %+v, want one created + one reused", got, base)
	}
	p.Put(b)

	// Put(nil) must not disturb the gauge.
	p.Put(nil)
	if got := Outstanding(); got != baseOut {
		t.Errorf("outstanding after Put(nil) = %d, want %d", got, baseOut)
	}
}
