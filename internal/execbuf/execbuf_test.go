package execbuf

import (
	"runtime"
	"sync"
	"testing"
)

func TestArenaReusesCapacity(t *testing.T) {
	var a Arena
	r1 := a.Ranks(100)
	if len(r1) != 100 {
		t.Fatalf("len = %d, want 100", len(r1))
	}
	r1[0] = 42
	r2 := a.Ranks(50)
	if &r1[0] != &r2[0] {
		t.Error("shrinking request did not reuse the backing array")
	}
	if a.Grows() != 1 {
		t.Errorf("grows = %d, want 1 (one allocation serves both requests)", a.Grows())
	}
	if a.Ranks(200); a.Grows() != 2 {
		t.Errorf("grows = %d after larger request, want 2", a.Grows())
	}
}

func TestArenaZeroesScratchBuffers(t *testing.T) {
	var a Arena
	for _, f := range []func(int) []float32{a.Acc, a.Bins, a.Contrib} {
		s := f(64)
		for i := range s {
			s[i] = 1
		}
	}
	for name, f := range map[string]func(int) []float32{"acc": a.Acc, "bins": a.Bins, "contrib": a.Contrib} {
		for i, v := range f(64) {
			if v != 0 {
				t.Fatalf("%s[%d] = %g on reuse, want 0", name, i, v)
			}
		}
	}
	p := a.Partials(4)
	p[2].V = 7
	if got := a.Partials(4); got[2].V != 0 {
		t.Errorf("partials not zeroed on reuse: %g", got[2].V)
	}
	r := a.Residuals(4)
	r[1].V = 3
	if got := a.Residuals(4); got[1].V != 0 {
		t.Errorf("residuals not zeroed on reuse: %g", got[1].V)
	}
}

func TestArenaRanksNotZeroed(t *testing.T) {
	// Ranks are fully overwritten by the caller; the arena must not pay an
	// extra clear pass for them.
	var a Arena
	r := a.Ranks(8)
	r[3] = 5
	if got := a.Ranks(8); got[3] != 5 {
		t.Error("ranks buffer was cleared; contract says contents are unspecified but untouched")
	}
}

func TestArenaFootprint(t *testing.T) {
	var a Arena
	a.Ranks(100)
	a.Partials(2)
	want := int64(100*4 + 2*64)
	if got := a.Footprint(); got != want {
		t.Errorf("footprint = %d, want %d", got, want)
	}
}

func TestPoolRecyclesSequentially(t *testing.T) {
	var p Pool
	a := p.Get()
	a.Ranks(10)
	p.Put(a)
	b := p.Get()
	if a != b {
		t.Error("sequential Get after Put returned a different arena")
	}
	s := p.Stats()
	if s.Created != 1 || s.Reused != 1 {
		t.Errorf("stats = %+v, want Created=1 Reused=1", s)
	}
}

func TestPoolConcurrentGetsAreDistinct(t *testing.T) {
	var p Pool
	const n = 8
	arenas := make([]*Arena, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			arenas[i] = p.Get()
		}(i)
	}
	wg.Wait()
	seen := map[*Arena]bool{}
	for _, a := range arenas {
		if seen[a] {
			t.Fatal("two concurrent Gets shared one arena")
		}
		seen[a] = true
	}
	if s := p.Stats(); s.Created != n {
		t.Errorf("created = %d, want %d", s.Created, n)
	}
	for _, a := range arenas {
		p.Put(a)
	}
	if got := p.Get(); !seen[got] {
		t.Error("Get after Put returned an unknown arena")
	}
}

func TestPoolPutNilIsNoop(t *testing.T) {
	var p Pool
	p.Put(nil)
	if p.Get() == nil {
		t.Fatal("Get returned nil")
	}
}

// TestGlobalStatsTrackPoolTraffic checks the process-wide registry mirror:
// pool traffic shows up in GlobalStats/Outstanding as deltas (the series are
// shared by every pool in the process, so only deltas are assertable).
func TestGlobalStatsTrackPoolTraffic(t *testing.T) {
	base := GlobalStats()
	baseOut := Outstanding()

	var p Pool
	a := p.Get() // fresh: created+1, outstanding+1
	if got := GlobalStats(); got.Created != base.Created+1 || got.Reused != base.Reused {
		t.Errorf("after Get: global delta = %+v from %+v, want one created", got, base)
	}
	if got := Outstanding(); got != baseOut+1 {
		t.Errorf("outstanding = %d, want %d", got, baseOut+1)
	}
	p.Put(a)
	if got := Outstanding(); got != baseOut {
		t.Errorf("outstanding after Put = %d, want %d", got, baseOut)
	}
	b := p.Get() // warm: reused+1
	if b != a {
		t.Error("sequential Get did not recycle the arena")
	}
	if got := GlobalStats(); got.Created != base.Created+1 || got.Reused != base.Reused+1 {
		t.Errorf("after recycle: global delta = %+v from %+v, want one created + one reused", got, base)
	}
	p.Put(b)

	// Put(nil) must not disturb the gauge.
	p.Put(nil)
	if got := Outstanding(); got != baseOut {
		t.Errorf("outstanding after Put(nil) = %d, want %d", got, baseOut)
	}
}

// TestPoolCapBoundsFreeList: a concurrency burst must not pin its peak arena
// memory forever — Put drops arenas beyond the cap.
func TestPoolCapBoundsFreeList(t *testing.T) {
	var p Pool
	p.SetCap(2)
	if got := p.Cap(); got != 2 {
		t.Fatalf("cap = %d, want 2", got)
	}
	const burst = 6
	arenas := make([]*Arena, burst)
	for i := range arenas {
		arenas[i] = p.Get()
	}
	for _, a := range arenas {
		p.Put(a)
	}
	p.mu.Lock()
	free := len(p.free)
	p.mu.Unlock()
	if free != 2 {
		t.Errorf("free list holds %d arenas after the burst, want cap 2", free)
	}
	s := p.Stats()
	if s.Freed != burst-2 {
		t.Errorf("freed = %d, want %d", s.Freed, burst-2)
	}
	if s.Outstanding != 0 {
		t.Errorf("outstanding = %d after all Puts, want 0", s.Outstanding)
	}
}

func TestPoolDefaultCapIsGOMAXPROCS(t *testing.T) {
	var p Pool
	if got, want := p.Cap(), runtime.GOMAXPROCS(0); got != want {
		t.Errorf("default cap = %d, want GOMAXPROCS = %d", got, want)
	}
	p.SetCap(5)
	p.SetCap(0) // restore default
	if got, want := p.Cap(), runtime.GOMAXPROCS(0); got != want {
		t.Errorf("cap after SetCap(0) = %d, want GOMAXPROCS = %d", got, want)
	}
}

// TestPoolCrossPoolPutSettlesWithOwner: an arena drawn from one pool and
// released into another (an Exec spanning a reload's artifact swap) must
// settle its checkout with the issuing pool — neither pool's Outstanding may
// go negative, and the global gauge stays balanced.
func TestPoolCrossPoolPutSettlesWithOwner(t *testing.T) {
	baseOut := Outstanding()
	var p1, p2 Pool
	a := p1.Get()
	if s := p1.Stats(); s.Outstanding != 1 {
		t.Fatalf("p1 outstanding = %d after Get, want 1", s.Outstanding)
	}
	p2.Put(a)
	if s := p1.Stats(); s.Outstanding != 0 {
		t.Errorf("p1 outstanding = %d after cross-pool Put, want 0", s.Outstanding)
	}
	if s := p2.Stats(); s.Outstanding != 0 {
		t.Errorf("p2 outstanding = %d after receiving a foreign arena, want 0", s.Outstanding)
	}
	if got := Outstanding(); got != baseOut {
		t.Errorf("global outstanding = %d, want %d", got, baseOut)
	}
	// The arena now serves p2's next Get.
	if b := p2.Get(); b != a {
		t.Error("cross-pool Put did not land the arena on p2's free list")
	} else {
		p2.Put(b)
	}
}

// TestPoolDoublePutCannotGoNegative: a second Put of the same arena is a
// caller bug, but it must not corrupt the accounting.
func TestPoolDoublePutCannotGoNegative(t *testing.T) {
	baseOut := Outstanding()
	var p Pool
	p.SetCap(8)
	a := p.Get()
	p.Put(a)
	p.Put(a)
	if got := Outstanding(); got != baseOut {
		t.Errorf("global outstanding = %d after double Put, want %d", got, baseOut)
	}
	if s := p.Stats(); s.Outstanding != 0 {
		t.Errorf("pool outstanding = %d after double Put, want 0", s.Outstanding)
	}
}

// TestPoolMoveToRespectsDstCap: migrating a free list across an artifact
// transition must not overshoot the destination's bound.
func TestPoolMoveToRespectsDstCap(t *testing.T) {
	var src, dst Pool
	src.SetCap(8)
	dst.SetCap(2)
	arenas := make([]*Arena, 5)
	for i := range arenas {
		arenas[i] = src.Get()
	}
	for _, a := range arenas {
		src.Put(a)
	}
	src.MoveTo(&dst)
	dst.mu.Lock()
	free := len(dst.free)
	dst.mu.Unlock()
	if free != 2 {
		t.Errorf("dst free list = %d after MoveTo, want cap 2", free)
	}
	if s := dst.Stats(); s.Freed != 3 {
		t.Errorf("dst freed = %d, want 3", s.Freed)
	}
	src.mu.Lock()
	srcFree := len(src.free)
	src.mu.Unlock()
	if srcFree != 0 {
		t.Errorf("src free list = %d after MoveTo, want 0", srcFree)
	}
}

// TestPoolMoveToMidFlight: arenas checked out across a MoveTo settle
// correctly no matter which pool they are returned to.
func TestPoolMoveToMidFlight(t *testing.T) {
	baseOut := Outstanding()
	var old, next Pool
	held := old.Get() // in-flight Exec on the old artifact
	warm := old.Get()
	old.Put(warm) // one warm arena on the old free list
	old.MoveTo(&next)
	// The in-flight arena returns into the *new* artifact's pool.
	next.Put(held)
	if s := old.Stats(); s.Outstanding != 0 {
		t.Errorf("old outstanding = %d, want 0", s.Outstanding)
	}
	if s := next.Stats(); s.Outstanding != 0 {
		t.Errorf("next outstanding = %d, want 0", s.Outstanding)
	}
	if got := Outstanding(); got != baseOut {
		t.Errorf("global outstanding = %d, want %d", got, baseOut)
	}
}
