package gen

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"hipa/internal/graph"
)

func TestAliasTableUniform(t *testing.T) {
	tbl, err := NewAliasTable([]float64{1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(1, 2))
	counts := make([]int, 4)
	const n = 40000
	for i := 0; i < n; i++ {
		counts[tbl.Sample(rng)]++
	}
	for i, c := range counts {
		frac := float64(c) / n
		if math.Abs(frac-0.25) > 0.02 {
			t.Errorf("outcome %d frequency %.3f, want ~0.25", i, frac)
		}
	}
}

func TestAliasTableSkewed(t *testing.T) {
	tbl, err := NewAliasTable([]float64{8, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(3, 4))
	counts := make([]int, 3)
	const n = 50000
	for i := 0; i < n; i++ {
		counts[tbl.Sample(rng)]++
	}
	if frac := float64(counts[0]) / n; math.Abs(frac-0.8) > 0.02 {
		t.Errorf("outcome 0 frequency %.3f, want ~0.8", frac)
	}
}

func TestAliasTableZeroWeightNeverSampled(t *testing.T) {
	tbl, err := NewAliasTable([]float64{1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(5, 6))
	for i := 0; i < 10000; i++ {
		if tbl.Sample(rng) == 1 {
			t.Fatal("sampled zero-weight outcome")
		}
	}
}

func TestAliasTableErrors(t *testing.T) {
	if _, err := NewAliasTable(nil); err == nil {
		t.Error("expected error for empty weights")
	}
	if _, err := NewAliasTable([]float64{0, 0}); err == nil {
		t.Error("expected error for all-zero weights")
	}
	if _, err := NewAliasTable([]float64{1, -1}); err == nil {
		t.Error("expected error for negative weight")
	}
}

// Property: alias table empirical distribution tracks weights.
func TestPropertyAliasDistribution(t *testing.T) {
	f := func(seed uint64, raw [5]uint8) bool {
		weights := make([]float64, 5)
		var sum float64
		for i, r := range raw {
			weights[i] = float64(r%16) + 0.01
			sum += weights[i]
		}
		tbl, err := NewAliasTable(weights)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewPCG(seed, 99))
		counts := make([]int, 5)
		const n = 20000
		for i := 0; i < n; i++ {
			counts[tbl.Sample(rng)]++
		}
		for i := range weights {
			want := weights[i] / sum
			got := float64(counts[i]) / n
			if math.Abs(got-want) > 0.03 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestUniformDeterministic(t *testing.T) {
	g1, err := Uniform(100, 1000, 42)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Uniform(100, 1000, 42)
	if err != nil {
		t.Fatal(err)
	}
	if g1.NumEdges() != 1000 || g2.NumEdges() != 1000 {
		t.Fatal("edge count wrong")
	}
	for v := 0; v < 100; v++ {
		a, b := g1.OutNeighbors(graph.VertexID(v)), g2.OutNeighbors(graph.VertexID(v))
		if len(a) != len(b) {
			t.Fatalf("nondeterministic generation at vertex %d", v)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("nondeterministic edge at %d[%d]", v, i)
			}
		}
	}
}

func TestUniformSeedsDiffer(t *testing.T) {
	g1, _ := Uniform(100, 1000, 1)
	g2, _ := Uniform(100, 1000, 2)
	same := true
	for v := 0; v < 100 && same; v++ {
		a, b := g1.OutNeighbors(graph.VertexID(v)), g2.OutNeighbors(graph.VertexID(v))
		if len(a) != len(b) {
			same = false
			break
		}
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestUniformErrors(t *testing.T) {
	if _, err := Uniform(0, 10, 1); err == nil {
		t.Error("expected error for n=0")
	}
	if _, err := Uniform(10, -1, 1); err == nil {
		t.Error("expected error for m<0")
	}
}

func TestRMATBasic(t *testing.T) {
	g, err := RMAT(DefaultRMAT(10, 7))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 1024 {
		t.Fatalf("NumVertices = %d, want 1024", g.NumVertices())
	}
	if g.NumEdges() != 16*1024 {
		t.Fatalf("NumEdges = %d, want %d", g.NumEdges(), 16*1024)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// R-MAT graphs are heavily skewed: top 10% of vertices should own well
	// over 30% of edges.
	if skew := DegreeSkew(g, 0.10); skew < 0.3 {
		t.Errorf("RMAT skew %.2f, want >= 0.3", skew)
	}
}

func TestRMATDeterministic(t *testing.T) {
	cfg := DefaultRMAT(8, 123)
	g1, _ := RMAT(cfg)
	g2, _ := RMAT(cfg)
	for v := 0; v < g1.NumVertices(); v++ {
		a, b := g1.OutNeighbors(graph.VertexID(v)), g2.OutNeighbors(graph.VertexID(v))
		if len(a) != len(b) {
			t.Fatalf("nondeterministic at %d", v)
		}
	}
}

func TestRMATErrors(t *testing.T) {
	if _, err := RMAT(RMATConfig{Scale: 0, EdgeFactor: 16, A: 0.25, B: 0.25, C: 0.25, D: 0.25}); err == nil {
		t.Error("expected error for scale 0")
	}
	if _, err := RMAT(RMATConfig{Scale: 5, EdgeFactor: 0, A: 0.25, B: 0.25, C: 0.25, D: 0.25}); err == nil {
		t.Error("expected error for edge factor 0")
	}
	if _, err := RMAT(RMATConfig{Scale: 5, EdgeFactor: 16, A: 0.5, B: 0.5, C: 0.5, D: 0.5}); err == nil {
		t.Error("expected error for probabilities not summing to 1")
	}
}

func TestPowerLawEdgeCountExact(t *testing.T) {
	cfg := PowerLawConfig{Vertices: 500, Edges: 7000, OutAlpha: 2.2, InAlpha: 0.9, Seed: 9}
	g, err := PowerLaw(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 7000 {
		t.Fatalf("NumEdges = %d, want exactly 7000", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPowerLawSkew(t *testing.T) {
	g, err := PowerLaw(PowerLawConfig{Vertices: 2000, Edges: 30000, OutAlpha: 2.0, InAlpha: 1.0, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	// In-degree skew: build in-edges and check the hot head got most mass.
	g.BuildIn()
	var hotIn int64
	for v := 0; v < 200; v++ { // top 10% by popularity rank (low IDs hot, no shuffle)
		hotIn += g.InDegree(graph.VertexID(v))
	}
	frac := float64(hotIn) / float64(g.NumEdges())
	if frac < 0.4 {
		t.Errorf("top-10%% in-degree share %.2f, want >= 0.4 (Zipf skew)", frac)
	}
	// Out-degree skew present too.
	if skew := DegreeSkew(g, 0.10); skew < 0.2 {
		t.Errorf("out-degree skew %.2f too low", skew)
	}
}

func TestPowerLawHotShuffle(t *testing.T) {
	g, err := PowerLaw(PowerLawConfig{Vertices: 2000, Edges: 30000, OutAlpha: 2.0, InAlpha: 1.0, Seed: 11, HotShuffle: true})
	if err != nil {
		t.Fatal(err)
	}
	g.BuildIn()
	var hotIn int64
	for v := 0; v < 200; v++ {
		hotIn += g.InDegree(graph.VertexID(v))
	}
	frac := float64(hotIn) / float64(g.NumEdges())
	if frac > 0.35 {
		t.Errorf("with HotShuffle the low-ID in-degree share is %.2f; hot vertices should be scattered", frac)
	}
}

func TestPowerLawErrors(t *testing.T) {
	if _, err := PowerLaw(PowerLawConfig{Vertices: 0, Edges: 10, OutAlpha: 2}); err == nil {
		t.Error("expected error for 0 vertices")
	}
	if _, err := PowerLaw(PowerLawConfig{Vertices: 10, Edges: -1, OutAlpha: 2}); err == nil {
		t.Error("expected error for negative edges")
	}
	if _, err := PowerLaw(PowerLawConfig{Vertices: 10, Edges: 10, OutAlpha: 1.0}); err == nil {
		t.Error("expected error for OutAlpha <= 1")
	}
	if _, err := PowerLaw(PowerLawConfig{Vertices: 10, Edges: 10, OutAlpha: 2, InAlpha: -1}); err == nil {
		t.Error("expected error for negative InAlpha")
	}
}

func TestCatalogComplete(t *testing.T) {
	want := []string{"journal", "pld", "wiki", "kron", "twitter", "mpi"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("catalog has %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("catalog[%d] = %q, want %q (paper order)", i, got[i], want[i])
		}
	}
}

func TestByName(t *testing.T) {
	d, err := ByName("twitter")
	if err != nil {
		t.Fatal(err)
	}
	if d.PaperEdges != 1_500_000_000 {
		t.Errorf("twitter paper edges = %d", d.PaperEdges)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("expected error for unknown dataset")
	}
}

func TestCatalogDensityPreserved(t *testing.T) {
	for _, d := range Catalog {
		g, err := d.Generate(2048)
		if err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		wantDeg := float64(d.PaperEdges) / float64(d.PaperVertices)
		gotDeg := float64(g.NumEdges()) / float64(g.NumVertices())
		// Kron rounds vertices to a power of two; allow wider tolerance.
		tol := 0.05
		if d.Kind == KindKron {
			tol = 0.20
		}
		if math.Abs(gotDeg-wantDeg)/wantDeg > tol {
			t.Errorf("%s: density %.2f, paper %.2f", d.Name, gotDeg, wantDeg)
		}
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", d.Name, err)
		}
	}
}

func TestGenerateByName(t *testing.T) {
	g, err := GenerateByName("journal", 4096)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() == 0 {
		t.Fatal("empty graph")
	}
	if _, err := GenerateByName("bogus", 4096); err == nil {
		t.Fatal("expected error")
	}
	if _, err := GenerateByName("journal", 0); err == nil {
		t.Fatal("expected error for divisor 0")
	}
}

func TestDegreeSkewBounds(t *testing.T) {
	g, _ := Uniform(1000, 10000, 5)
	s := DegreeSkew(g, 0.1)
	if s <= 0 || s > 1 {
		t.Fatalf("skew out of bounds: %f", s)
	}
	// Uniform graph: top 10% should own roughly 10-25% of edges, far less
	// than a power-law graph.
	if s > 0.3 {
		t.Errorf("uniform graph skew %.2f unexpectedly high", s)
	}
	empty := gmustEmpty(t)
	if DegreeSkew(empty, 0.1) != 0 {
		t.Error("empty graph skew should be 0")
	}
}

func gmustEmpty(t *testing.T) *graph.Graph {
	t.Helper()
	return mustBuild(t, 0)
}

func mustBuild(t *testing.T, n int) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(n)
	return b.Build()
}

func TestDegreeCCDF(t *testing.T) {
	g, err := PowerLaw(PowerLawConfig{Vertices: 3000, Edges: 45000, OutAlpha: 2.1, InAlpha: 0.9, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	ccdf := DegreeCCDF(g, []int64{1, 10, 100, 1000})
	// Monotone non-increasing, starting near 1 (almost every vertex has an
	// edge in a dense power-law graph).
	for i := 1; i < len(ccdf); i++ {
		if ccdf[i] > ccdf[i-1] {
			t.Fatalf("CCDF not monotone: %v", ccdf)
		}
	}
	if ccdf[0] < 0.5 {
		t.Errorf("CCDF(1) = %f, want most vertices to have an edge", ccdf[0])
	}
	// Power law: heavy tail present but small.
	if ccdf[2] <= 0 || ccdf[2] > 0.2 {
		t.Errorf("CCDF(100) = %f, want a small heavy tail", ccdf[2])
	}
	if got := DegreeCCDF(mustBuild(t, 0), []int64{1}); got[0] != 0 {
		t.Error("empty graph CCDF should be 0")
	}
}
