package gen

import (
	"fmt"
	"math"
	"math/rand/v2"
	"runtime"
	"sync"

	"hipa/internal/graph"
)

// chunkRNG derives an independent deterministic PRNG stream for chunk i of a
// generation seeded with seed. PCG streams with distinct increments are
// statistically independent.
func chunkRNG(seed uint64, chunk int) *rand.Rand {
	return rand.New(rand.NewPCG(seed, 0x9E3779B97F4A7C15*uint64(chunk+1)))
}

// parallelEdges runs fn(chunk, rng, out) over nChunks chunks concurrently and
// concatenates the per-chunk edge slices in chunk order, keeping the overall
// result deterministic regardless of scheduling.
func parallelEdges(seed uint64, nChunks int, fn func(chunk int, rng *rand.Rand) []graph.Edge) []graph.Edge {
	parts := make([][]graph.Edge, nChunks)
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for c := 0; c < nChunks; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			parts[c] = fn(c, chunkRNG(seed, c))
		}(c)
	}
	wg.Wait()
	var total int
	for _, p := range parts {
		total += len(p)
	}
	all := make([]graph.Edge, 0, total)
	for _, p := range parts {
		all = append(all, p...)
	}
	return all
}

func numChunks(m int64) int {
	p := runtime.GOMAXPROCS(0)
	if m < 1<<14 || p <= 1 {
		return 1
	}
	return p * 4
}

// Uniform generates an Erdős–Rényi-style G(n, m) multigraph: m directed
// edges with independently uniform endpoints.
func Uniform(n int, m int64, seed uint64) (*graph.Graph, error) {
	if n <= 0 {
		return nil, fmt.Errorf("gen: Uniform needs n > 0, got %d", n)
	}
	if m < 0 {
		return nil, fmt.Errorf("gen: Uniform needs m >= 0, got %d", m)
	}
	nc := numChunks(m)
	per := m / int64(nc)
	edges := parallelEdges(seed, nc, func(c int, rng *rand.Rand) []graph.Edge {
		cnt := per
		if c == nc-1 {
			cnt = m - per*int64(nc-1)
		}
		out := make([]graph.Edge, cnt)
		for i := range out {
			out[i] = graph.Edge{
				Src: graph.VertexID(rng.IntN(n)),
				Dst: graph.VertexID(rng.IntN(n)),
			}
		}
		return out
	})
	b := graph.NewBuilder(n)
	b.AddEdges(edges)
	return b.Build(), nil
}

// RMATConfig parameterises the recursive-matrix (Kronecker) generator used
// by Graph500. Probabilities must sum to 1.
type RMATConfig struct {
	Scale      int     // number of vertices = 2^Scale
	EdgeFactor int     // edges = EdgeFactor * 2^Scale
	A, B, C, D float64 // quadrant probabilities (Graph500: .57 .19 .19 .05)
	Seed       uint64
	// Noise perturbs the quadrant probabilities per recursion level, as in
	// the Graph500 reference implementation, to avoid exact self-similarity.
	Noise float64
}

// DefaultRMAT returns the Graph500 reference parameters for the given scale.
func DefaultRMAT(scale int, seed uint64) RMATConfig {
	return RMATConfig{
		Scale: scale, EdgeFactor: 16,
		A: 0.57, B: 0.19, C: 0.19, D: 0.05,
		Seed: seed, Noise: 0.05,
	}
}

// RMAT generates a Kronecker/R-MAT graph. It reproduces the skewed power-law
// degree structure of the paper's `kron` dataset (Graph500 generator [4]).
func RMAT(cfg RMATConfig) (*graph.Graph, error) {
	if cfg.Scale < 1 || cfg.Scale > 30 {
		return nil, fmt.Errorf("gen: RMAT scale %d out of range [1,30]", cfg.Scale)
	}
	if cfg.EdgeFactor < 1 {
		return nil, fmt.Errorf("gen: RMAT edge factor %d < 1", cfg.EdgeFactor)
	}
	sum := cfg.A + cfg.B + cfg.C + cfg.D
	if math.Abs(sum-1) > 1e-9 {
		return nil, fmt.Errorf("gen: RMAT probabilities sum to %g, want 1", sum)
	}
	n := 1 << cfg.Scale
	m := int64(cfg.EdgeFactor) * int64(n)
	nc := numChunks(m)
	per := m / int64(nc)
	edges := parallelEdges(cfg.Seed, nc, func(c int, rng *rand.Rand) []graph.Edge {
		cnt := per
		if c == nc-1 {
			cnt = m - per*int64(nc-1)
		}
		out := make([]graph.Edge, cnt)
		for i := range out {
			out[i] = rmatEdge(cfg, rng)
		}
		return out
	})
	b := graph.NewBuilder(n)
	b.AddEdges(edges)
	return b.Build(), nil
}

func rmatEdge(cfg RMATConfig, rng *rand.Rand) graph.Edge {
	var src, dst uint32
	a, b, c := cfg.A, cfg.B, cfg.C
	for level := 0; level < cfg.Scale; level++ {
		// Perturb probabilities per level (Graph500-style noise).
		na, nb, nc3 := a, b, c
		if cfg.Noise > 0 {
			na *= 1 + cfg.Noise*(2*rng.Float64()-1)
			nb *= 1 + cfg.Noise*(2*rng.Float64()-1)
			nc3 *= 1 + cfg.Noise*(2*rng.Float64()-1)
		}
		r := rng.Float64()
		switch {
		case r < na:
			// top-left quadrant: both bits 0
		case r < na+nb:
			dst |= 1 << level
		case r < na+nb+nc3:
			src |= 1 << level
		default:
			src |= 1 << level
			dst |= 1 << level
		}
	}
	return graph.Edge{Src: src, Dst: dst}
}

// PowerLawConfig parameterises the power-law generator used for social- and
// web-graph analogs. Out-degrees follow a discrete Pareto distribution with
// exponent OutAlpha, scaled so the expected edge total is Edges; edge
// destinations are drawn from a Zipf(InAlpha) popularity distribution over
// vertices, producing the skewed in-degree typical of followers/hyperlinks
// ("a tiny fraction of vertices are responsible for a major fraction of
// edges", paper §1).
type PowerLawConfig struct {
	Vertices int
	Edges    int64
	OutAlpha float64 // out-degree tail exponent, > 1 (2.0-2.3 typical)
	InAlpha  float64 // destination popularity skew, >= 0 (0 = uniform)
	Seed     uint64
	// HotShuffle scatters the hot (popular) vertices across the ID space
	// instead of concentrating them at low IDs, mimicking crawl ordering.
	HotShuffle bool
	// MaxInShare caps any single vertex's share of the in-edge mass
	// (0 disables). Scaled-down graphs have relatively fatter Zipf heads
	// than their paper-scale originals (the top-vertex share of a Zipf
	// distribution grows as N shrinks); capping at the original's share
	// keeps hub granularity comparable.
	MaxInShare float64
}

// PowerLaw generates a directed power-law multigraph per cfg.
func PowerLaw(cfg PowerLawConfig) (*graph.Graph, error) {
	if cfg.Vertices <= 0 {
		return nil, fmt.Errorf("gen: PowerLaw needs vertices > 0")
	}
	if cfg.Edges < 0 {
		return nil, fmt.Errorf("gen: PowerLaw needs edges >= 0")
	}
	if cfg.OutAlpha <= 1 {
		return nil, fmt.Errorf("gen: PowerLaw OutAlpha must be > 1, got %g", cfg.OutAlpha)
	}
	if cfg.InAlpha < 0 {
		return nil, fmt.Errorf("gen: PowerLaw InAlpha must be >= 0, got %g", cfg.InAlpha)
	}
	n := cfg.Vertices
	rng := chunkRNG(cfg.Seed, 0)

	// Draw raw Pareto out-degrees, then rescale to hit the edge target.
	raw := make([]float64, n)
	var rawSum float64
	maxDeg := float64(n) // clip extreme tail
	for i := range raw {
		u := rng.Float64()
		d := math.Pow(1-u, -1/(cfg.OutAlpha-1)) // Pareto xmin=1
		if d > maxDeg {
			d = maxDeg
		}
		raw[i] = d
		rawSum += d
	}
	degrees := make([]int64, n)
	var assigned int64
	scale := float64(cfg.Edges) / rawSum
	for i := range raw {
		d := int64(raw[i] * scale)
		degrees[i] = d
		assigned += d
	}
	// Distribute the rounding remainder deterministically.
	for assigned < cfg.Edges {
		v := rng.IntN(n)
		degrees[v]++
		assigned++
	}
	for assigned > cfg.Edges {
		v := rng.IntN(n)
		if degrees[v] > 0 {
			degrees[v]--
			assigned--
		}
	}

	// Destination popularity: Zipf over a (possibly shuffled) ranking.
	var perm []int32
	if cfg.HotShuffle {
		perm = make([]int32, n)
		for i := range perm {
			perm[i] = int32(i)
		}
		rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	}
	var table *AliasTable
	if cfg.InAlpha > 0 {
		weights := zipfWeights(n, cfg.InAlpha)
		if cfg.MaxInShare > 0 {
			capWeights(weights, cfg.MaxInShare)
		}
		var err error
		table, err = NewAliasTable(weights)
		if err != nil {
			return nil, err
		}
	}

	// Prefix-sum degrees so chunks know their vertex ranges; parallelise
	// destination sampling by vertex range.
	starts := make([]int64, n+1)
	for i := 0; i < n; i++ {
		starts[i+1] = starts[i] + degrees[i]
	}
	nc := numChunks(cfg.Edges)
	// Split vertices into nc contiguous ranges of roughly equal edge counts.
	bounds := make([]int, nc+1)
	bounds[nc] = n
	for c := 1; c < nc; c++ {
		target := cfg.Edges * int64(c) / int64(nc)
		lo, hi := bounds[c-1], n
		for lo < hi {
			mid := (lo + hi) / 2
			if starts[mid] < target {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		bounds[c] = lo
	}
	edges := parallelEdges(cfg.Seed+1, nc, func(c int, rng *rand.Rand) []graph.Edge {
		loV, hiV := bounds[c], bounds[c+1]
		out := make([]graph.Edge, 0, starts[hiV]-starts[loV])
		for v := loV; v < hiV; v++ {
			for k := int64(0); k < degrees[v]; k++ {
				var dst int
				if table != nil {
					dst = table.Sample(rng)
				} else {
					dst = rng.IntN(n)
				}
				if perm != nil {
					dst = int(perm[dst])
				}
				out = append(out, graph.Edge{Src: graph.VertexID(v), Dst: graph.VertexID(dst)})
			}
		}
		return out
	})
	b := graph.NewBuilder(n)
	b.AddEdges(edges)
	return b.Build(), nil
}
