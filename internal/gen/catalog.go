package gen

import (
	"fmt"
	"math"
	"sort"

	"hipa/internal/graph"
)

// DatasetKind distinguishes generator families in the catalog.
type DatasetKind int

const (
	// KindSocial marks follower-style social networks (journal, twitter, mpi).
	KindSocial DatasetKind = iota
	// KindWeb marks hyperlink graphs (pld, wiki).
	KindWeb
	// KindKron marks the Graph500 Kronecker synthetic (kron).
	KindKron
)

// Dataset describes one entry of the paper's Table 1 together with the
// synthetic generator parameters of its analog.
//
// The paper evaluates on six graphs up to 2.1B edges; those datasets (and a
// machine able to hold them) are not available here, so the catalog
// regenerates each one as a seeded synthetic graph preserving the properties
// PageRank and HiPa are sensitive to: vertex/edge ratio (density), power-law
// degree skew, and generator family. The Divisor argument scales the vertex
// count down while keeping density fixed; the harness records the divisor
// used with every reported number.
type Dataset struct {
	Name        string
	Description string
	// Paper-reported sizes (for EXPERIMENTS.md comparisons).
	PaperVertices int64
	PaperEdges    int64
	Kind          DatasetKind
	// Generator skew parameters.
	OutAlpha float64
	InAlpha  float64
	Seed     uint64
}

// Catalog lists the six evaluation graphs of the paper (Table 1) in paper
// order.
var Catalog = []Dataset{
	{
		Name: "journal", Description: "LiveJournal social network analog",
		PaperVertices: 4_800_000, PaperEdges: 68_500_000,
		Kind: KindSocial, OutAlpha: 2.3, InAlpha: 0.9, Seed: 1001,
	},
	{
		Name: "pld", Description: "Pay-Level-Domain hyperlink graph analog",
		PaperVertices: 42_900_000, PaperEdges: 600_000_000,
		Kind: KindWeb, OutAlpha: 2.1, InAlpha: 1.05, Seed: 1002,
	},
	{
		Name: "wiki", Description: "Wikipedia links graph analog",
		PaperVertices: 18_300_000, PaperEdges: 200_000_000,
		Kind: KindWeb, OutAlpha: 2.2, InAlpha: 0.85, Seed: 1003,
	},
	{
		Name: "kron", Description: "Graph500 Kronecker synthetic",
		PaperVertices: 67_000_000, PaperEdges: 2_100_000_000,
		Kind: KindKron, Seed: 1004,
	},
	{
		Name: "twitter", Description: "Twitter follower network analog",
		PaperVertices: 41_700_000, PaperEdges: 1_500_000_000,
		Kind: KindSocial, OutAlpha: 2.0, InAlpha: 1.1, Seed: 1005,
	},
	{
		Name: "mpi", Description: "Twitter influence (MPI) network analog",
		PaperVertices: 52_600_000, PaperEdges: 2_000_000_000,
		Kind: KindSocial, OutAlpha: 2.05, InAlpha: 1.0, Seed: 1006,
	},
}

// Names returns the catalog dataset names in paper order.
func Names() []string {
	out := make([]string, len(Catalog))
	for i, d := range Catalog {
		out[i] = d.Name
	}
	return out
}

// ByName returns the catalog entry with the given name.
func ByName(name string) (Dataset, error) {
	for _, d := range Catalog {
		if d.Name == name {
			return d, nil
		}
	}
	return Dataset{}, fmt.Errorf("gen: unknown dataset %q (known: %v)", name, Names())
}

// DefaultDivisor is the standard scale-down factor: vertex counts are
// divided by it (density preserved). At 256 the full catalog is ~25M edges.
const DefaultDivisor = 256

// Generate produces the synthetic analog of dataset d scaled down by
// divisor (>= 1). Density (edges per vertex) matches the paper's dataset.
func (d Dataset) Generate(divisor int) (*graph.Graph, error) {
	if divisor < 1 {
		return nil, fmt.Errorf("gen: divisor must be >= 1, got %d", divisor)
	}
	avgDeg := float64(d.PaperEdges) / float64(d.PaperVertices)
	switch d.Kind {
	case KindKron:
		// Vertex count must be a power of two; pick the closest scale.
		target := float64(d.PaperVertices) / float64(divisor)
		scale := int(math.Round(math.Log2(target)))
		if scale < 8 {
			scale = 8
		}
		cfg := DefaultRMAT(scale, d.Seed)
		cfg.EdgeFactor = int(math.Round(avgDeg))
		return RMAT(cfg)
	default:
		n := int(d.PaperVertices / int64(divisor))
		if n < 256 {
			n = 256
		}
		m := int64(math.Round(float64(n) * avgDeg))
		return PowerLaw(PowerLawConfig{
			Vertices: n,
			Edges:    m,
			OutAlpha: d.OutAlpha,
			InAlpha:  d.InAlpha,
			Seed:     d.Seed,
			// Real graphs scatter their hub vertices across the vertex ID
			// space (crawl/signup order); without the shuffle every hot
			// vertex would land in the first partition, a pathological
			// gather hotspot no real dataset exhibits.
			HotShuffle: true,
			// Cap single-hub in-degree share at ~2%, the level of the
			// paper-scale originals (a 4.8M-vertex Zipf(0.9) head holds
			// ~2.1%); see PowerLawConfig.MaxInShare.
			MaxInShare: 0.02,
		})
	}
}

// GenerateByName is a convenience wrapper: catalog lookup + Generate.
func GenerateByName(name string, divisor int) (*graph.Graph, error) {
	d, err := ByName(name)
	if err != nil {
		return nil, err
	}
	return d.Generate(divisor)
}

// DegreeSkew summarises how concentrated a graph's out-degree mass is: the
// fraction of edges owned by the top `topFrac` fraction of vertices. The
// paper's motivating irregularity is "10 percent of vertices responsible for
// 90 percent of edges".
func DegreeSkew(g *graph.Graph, topFrac float64) float64 {
	n := g.NumVertices()
	if n == 0 || g.NumEdges() == 0 {
		return 0
	}
	degs := make([]int64, n)
	for v := 0; v < n; v++ {
		degs[v] = g.OutDegree(graph.VertexID(v))
	}
	sort.Slice(degs, func(i, j int) bool { return degs[i] > degs[j] })
	k := int(float64(n) * topFrac)
	if k < 1 {
		k = 1
	}
	var top int64
	for _, d := range degs[:k] {
		top += d
	}
	return float64(top) / float64(g.NumEdges())
}

// DegreeCCDF returns the complementary cumulative out-degree distribution
// of g at the given degree thresholds: fraction of vertices with out-degree
// >= threshold. Used to verify that the synthetic analogs preserve the
// power-law shape of the paper's datasets.
func DegreeCCDF(g *graph.Graph, thresholds []int64) []float64 {
	n := g.NumVertices()
	out := make([]float64, len(thresholds))
	if n == 0 {
		return out
	}
	for i, th := range thresholds {
		count := 0
		for v := 0; v < n; v++ {
			if g.OutDegree(graph.VertexID(v)) >= th {
				count++
			}
		}
		out[i] = float64(count) / float64(n)
	}
	return out
}
