// Package gen provides deterministic, seeded graph generators used to stand
// in for the paper's datasets (Table 1), plus a catalog mapping each paper
// graph to a synthetic analog with matching degree skew and density.
//
// All generators are deterministic functions of their seed, so experiments
// are exactly reproducible. Large generations are parallelised internally;
// determinism is preserved by deriving one independent PRNG stream per chunk.
package gen

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// AliasTable implements Walker's alias method for O(1) sampling from a
// discrete distribution with fixed weights. Construction is O(n).
type AliasTable struct {
	prob  []float64 // probability of returning i itself (vs its alias)
	alias []int32
}

// NewAliasTable builds an alias table over the given non-negative weights.
// At least one weight must be positive.
func NewAliasTable(weights []float64) (*AliasTable, error) {
	n := len(weights)
	if n == 0 {
		return nil, fmt.Errorf("gen: alias table needs at least one weight")
	}
	var sum float64
	for i, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("gen: negative weight %g at index %d", w, i)
		}
		sum += w
	}
	if sum <= 0 {
		return nil, fmt.Errorf("gen: all weights are zero")
	}
	t := &AliasTable{
		prob:  make([]float64, n),
		alias: make([]int32, n),
	}
	// Scaled probabilities; classic two-worklist construction.
	scaled := make([]float64, n)
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / sum
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		t.prob[s] = scaled[s]
		t.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, l := range large {
		t.prob[l] = 1
		t.alias[l] = l
	}
	for _, s := range small { // numerical leftovers
		t.prob[s] = 1
		t.alias[s] = s
	}
	return t, nil
}

// Sample draws one index according to the table's distribution.
func (t *AliasTable) Sample(rng *rand.Rand) int {
	n := len(t.prob)
	i := rng.IntN(n)
	if rng.Float64() < t.prob[i] {
		return i
	}
	return int(t.alias[i])
}

// Len returns the number of outcomes.
func (t *AliasTable) Len() int { return len(t.prob) }

// zipfWeights returns weights proportional to 1/(rank+1)^alpha for n items.
func zipfWeights(n int, alpha float64) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1 / math.Pow(float64(i+1), alpha)
	}
	return w
}

// capWeights iteratively clamps individual weights to at most share of the
// total, redistributing the clipped mass implicitly via renormalisation.
// A few rounds converge since clipping only shrinks the head.
func capWeights(w []float64, share float64) {
	for round := 0; round < 4; round++ {
		var sum float64
		for _, x := range w {
			sum += x
		}
		limit := sum * share
		clipped := false
		for i, x := range w {
			if x > limit {
				w[i] = limit
				clipped = true
			}
		}
		if !clipped {
			return
		}
	}
}
