package gen

import (
	"fmt"
	"math/rand/v2"

	"hipa/internal/graph"
)

// MutationStream produces deterministic mutation batches against a versioned
// graph for the dynamic-replay experiment: each batch mixes uniform-random
// edge inserts with deletes of edges that exist in the current view, so a
// replay exercises both overlay directions without ever degenerating into
// no-ops on an empty adjacency. The stream is deterministic in (seed,
// batchSize, graph history): two replays of the same seed over the same
// versioned graph produce identical batches.
type MutationStream struct {
	vg        *graph.Versioned
	rng       *rand.Rand
	batchSize int
	// deleteEvery controls the insert:delete mix — every deleteEvery-th
	// mutation is a delete of an existing edge (default 4 → 25% deletes).
	deleteEvery int
}

// NewMutationStream builds a stream over vg. batchSize is the mutation count
// of each Next batch (must be positive); seed fixes the sequence.
func NewMutationStream(vg *graph.Versioned, seed uint64, batchSize int) (*MutationStream, error) {
	if vg == nil {
		return nil, fmt.Errorf("gen: mutation stream needs a versioned graph")
	}
	if batchSize < 1 {
		return nil, fmt.Errorf("gen: mutation batch size %d must be positive", batchSize)
	}
	if vg.NumVertices() == 0 {
		return nil, fmt.Errorf("gen: mutation stream over an empty graph")
	}
	return &MutationStream{
		vg:          vg,
		rng:         rand.New(rand.NewPCG(seed, 0x9E3779B97F4A7C15)),
		batchSize:   batchSize,
		deleteEvery: 4,
	}, nil
}

// Next generates the next mutation batch. The caller applies it
// (vg.ApplyBatch) before calling Next again — deletes target edges that
// exist in the view at generation time, so the stream reads the graph it is
// mutating.
func (s *MutationStream) Next() []graph.Mutation {
	n := s.vg.NumVertices()
	ver := s.vg.Version()
	muts := make([]graph.Mutation, 0, s.batchSize)
	for i := 0; i < s.batchSize; i++ {
		if (i+1)%s.deleteEvery == 0 {
			if m, ok := s.randomDelete(ver, n); ok {
				muts = append(muts, m)
				continue
			}
		}
		muts = append(muts, graph.Mutation{
			Op:  graph.InsertEdge,
			Src: graph.VertexID(s.rng.IntN(n)),
			Dst: graph.VertexID(s.rng.IntN(n)),
		})
	}
	return muts
}

// randomDelete picks an existing edge of the current version by probing
// random sources for a non-empty adjacency row (bounded probes so a sparse
// graph cannot stall the stream).
func (s *MutationStream) randomDelete(ver graph.Version, n int) (graph.Mutation, bool) {
	for probe := 0; probe < 16; probe++ {
		src := graph.VertexID(s.rng.IntN(n))
		row, err := s.vg.OutNeighborsAt(src, ver)
		if err != nil || len(row) == 0 {
			continue
		}
		return graph.Mutation{
			Op:  graph.DeleteEdge,
			Src: src,
			Dst: row[s.rng.IntN(len(row))],
		}, true
	}
	return graph.Mutation{}, false
}

// Batches materialises k successive batches, applying each to the stream's
// versioned graph — the convenience form used by hipabench -exp dynamic and
// for writing replay files (graph.WriteMutationBatches). Returns the batches
// and the version reached after each one.
func (s *MutationStream) Batches(k int) ([][]graph.Mutation, []graph.Version, error) {
	batches := make([][]graph.Mutation, 0, k)
	versions := make([]graph.Version, 0, k)
	for i := 0; i < k; i++ {
		b := s.Next()
		ver, err := s.vg.ApplyBatch(b)
		if err != nil {
			return nil, nil, fmt.Errorf("gen: applying mutation batch %d: %w", i, err)
		}
		batches = append(batches, b)
		versions = append(versions, ver)
	}
	return batches, versions, nil
}
