package hipa

import (
	"bytes"
	"math"
	"testing"
)

func TestPublicAPIQuickstart(t *testing.T) {
	g, err := Generate("journal", 2048)
	if err != nil {
		t.Fatal(err)
	}
	res, err := HiPa.Run(g, Options{Machine: ScaledMachine(Skylake(), 2048), Iterations: 5, PartitionBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	if s := RankSum(res.Ranks); math.Abs(s-1) > 1e-3 {
		t.Fatalf("rank sum = %f", s)
	}
	if res.Model == nil {
		t.Fatal("no model report")
	}
}

func TestPublicGraphBuilding(t *testing.T) {
	b := NewGraphBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g := b.Build()
	if g.NumEdges() != 2 {
		t.Fatal("builder broken")
	}
	var buf bytes.Buffer
	buf.WriteString("0 1\n1 2\n2 0\n")
	g2, err := ReadEdgeList(&buf, 0)
	if err != nil || g2.NumVertices() != 3 {
		t.Fatalf("edge list: %v", err)
	}
	path := t.TempDir() + "/g.bin"
	if err := SaveGraph(path, g); err != nil {
		t.Fatal(err)
	}
	g3, err := LoadGraph(path)
	if err != nil || g3.NumEdges() != 2 {
		t.Fatalf("binary round trip: %v", err)
	}
}

func TestPublicGenerators(t *testing.T) {
	if len(Datasets()) != 6 {
		t.Error("catalog size")
	}
	g, err := RMAT(8, 4, 1)
	if err != nil || g.NumVertices() != 256 {
		t.Fatalf("RMAT: %v", err)
	}
	g2, err := PowerLaw(100, 500, 2.1, 0.9, 2)
	if err != nil || g2.NumEdges() != 500 {
		t.Fatalf("PowerLaw: %v", err)
	}
	g3, err := Uniform(10, 20, 3)
	if err != nil || g3.NumEdges() != 20 {
		t.Fatalf("Uniform: %v", err)
	}
}

func TestPublicMachines(t *testing.T) {
	if Skylake().LogicalCores() != 40 {
		t.Error("skylake")
	}
	if Haswell().L2.SizeBytes != 256<<10 {
		t.Error("haswell")
	}
	if SingleNodeMachine(Skylake()).NUMANodes != 1 {
		t.Error("single node")
	}
	if ScaledMachine(Skylake(), 256).L2.SizeBytes >= Skylake().L2.SizeBytes {
		t.Error("scaled")
	}
}

func TestEnginesList(t *testing.T) {
	names := map[string]bool{}
	for _, e := range Engines() {
		names[e.Name()] = true
	}
	for _, want := range []string{"HiPa", "p-PR", "v-PR", "GPOP", "Polymer"} {
		if !names[want] {
			t.Errorf("missing engine %s", want)
		}
	}
}

func TestTopK(t *testing.T) {
	ranks := []float32{0.1, 0.5, 0.2, 0.9, 0.3}
	top := TopK(ranks, 3)
	if len(top) != 3 || top[0] != 3 || top[1] != 1 || top[2] != 4 {
		t.Fatalf("TopK = %v, want [3 1 4]", top)
	}
	if got := TopK(ranks, 99); len(got) != 5 {
		t.Fatalf("TopK overshoot = %v", got)
	}
	// Large-k path (sort-based).
	big := make([]float32, 3000)
	for i := range big {
		big[i] = float32(i % 997)
	}
	topBig := TopK(big, 2500)
	for i := 1; i < len(topBig); i++ {
		if big[topBig[i-1]] < big[topBig[i]] {
			t.Fatal("TopK large-k not descending")
		}
	}
}

func TestReproFacade(t *testing.T) {
	cfg := NewReproConfig()
	cfg.Divisor = 4096
	cfg.Iterations = 3
	cfg.Datasets = []string{"journal"}
	rows, tbl, err := ReproTable1(cfg)
	if err != nil || len(rows) != 1 {
		t.Fatalf("ReproTable1: %v", err)
	}
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty render")
	}
	if _, _, err := ReproOverhead(cfg); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReproAblations(cfg, "journal"); err != nil {
		t.Fatal(err)
	}
}

func TestReferencePageRankPublic(t *testing.T) {
	g, _ := Uniform(50, 200, 9)
	r := ReferencePageRank(g, 10, 0.85)
	var sum float64
	for _, x := range r {
		sum += x
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("sum = %f", sum)
	}
}

func TestPublicWeightedAndPersonalized(t *testing.T) {
	g, err := Uniform(200, 2000, 31)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float32, g.NumVertices())
	w := make([]float32, g.NumEdges())
	for i := range x {
		x[i] = 1
	}
	for i := range w {
		w[i] = 2
	}
	y, err := WeightedSpMV(g, x, w, AlgoConfig{Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range y {
		sum += float64(v)
	}
	if math.Abs(sum-float64(2*g.NumEdges())) > 1 {
		t.Fatalf("weighted mass = %f, want %d", sum, 2*g.NumEdges())
	}
	pr, err := PersonalizedPageRank(g, []VertexID{0, 1}, 10, 0.85, AlgoConfig{Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	if s := RankSum(pr); math.Abs(s-1) > 1e-3 {
		t.Fatalf("personalized rank sum = %f", s)
	}
}
