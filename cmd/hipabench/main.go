// Command hipabench regenerates the paper's tables and figures.
//
// Usage:
//
//	hipabench [-exp all|table1|table2|overhead|fig5|fig6|fig7|table3|singlenode|nodescaling|frontier|dynamic|batch|ablation]
//	          [-divisor N] [-iters N] [-datasets a,b,c] [-seed N]
//	          [-repeat N] [-format text|csv|json] [-platform skylake]
//	          [-metrics-addr 127.0.0.1:0]
//	          [-baseline FILE [-baseline-write] [-baseline-out FILE]]
//
// -platform picks the execution substrate: skylake or haswell run the full
// modelled simulation (Table 3 always sweeps both regardless), native runs
// the engines wall-clock-only, so modelled columns report zero.
// Experiments share one preprocessing-artifact cache (see Config.Prep), so
// sweeps reuse each (graph, partition-size) artifact instead of rebuilding
// it per data point; a cache summary is printed to stderr at exit. -repeat N
// runs each selected experiment N times (rendering the last), which with the
// shared cache isolates iterative-phase timing from preprocessing noise.
//
// -format json emits each experiment as a {"title","header","rows","notes"}
// object, so benchmark trajectories (BENCH_*.json) can be produced
// mechanically:
//
//	hipabench -exp table2 -format json > BENCH_table2.json
//
// In JSON mode a final versioned summary object ("hipabench.summary/v1")
// carries the prep-cache and scratch-arena traffic of the whole invocation,
// so sweep efficiency is machine-readable, not stderr-only.
//
// -metrics-addr serves live telemetry (/metrics Prometheus exposition,
// /healthz, /debug/pprof/) for the whole invocation; the bound URL is
// printed to stderr first. With -repeat and -exp all, every engine's
// superstep-latency histograms accumulate in one process, live-scrapeable
// mid-sweep.
//
// -baseline FILE switches to allocation-baseline mode: instead of running
// experiments, the Exec allocation profile of every engine (allocs and
// bytes per steady-state iteration — zero by design — plus per-Exec fixed
// costs) is measured on the native platform and compared against the
// committed FILE, exiting 1 on regression. -baseline-write regenerates the
// file, -baseline-out additionally saves the measurement (the CI build
// artifact). See BENCH_pagerank.json and DESIGN.md for the schema.
//
// Every experiment prints an aligned text table matching the corresponding
// paper artifact (see DESIGN.md §3 for the index). The divisor scales both
// the datasets and the simulated machine, preserving the paper's
// cache-to-working-set ratios; partition sizes in the output are labelled at
// paper scale.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"hipa/internal/execbuf"
	"hipa/internal/gen"
	"hipa/internal/harness"
	"hipa/internal/obs/telemetry"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: all, table1, table2, overhead, fig5, fig6, fig7, table3, singlenode, nodescaling, frontier, dynamic, batch, ablation")
		divisor  = flag.Int("divisor", gen.DefaultDivisor, "scale divisor for datasets and machine capacities")
		iters    = flag.Int("iters", 20, "PageRank iterations per timed run")
		datasets = flag.String("datasets", "", "comma-separated dataset subset (default: full catalog)")
		seed     = flag.Uint64("seed", 0xC0FFEE, "simulated OS scheduler seed")
		ablGraph = flag.String("ablation-graph", "journal", "dataset for the ablation, node-scaling, frontier, dynamic, and batch experiments")
		format   = flag.String("format", "text", "output format: text, csv, or json")
		repeat   = flag.Int("repeat", 1, "run each experiment N times (render the last); later runs reuse cached prep artifacts")
		pfName   = flag.String("platform", "skylake", "execution platform: skylake, haswell (modelled), or native (wall-clock only)")
		prepPar  = flag.Int("prep-parallelism", 0, "Prepare-pipeline worker count (0 = all cores, 1 = serial); artifacts are identical at any setting")
		metrics  = flag.String("metrics-addr", "", "serve live telemetry (/metrics, /healthz, /debug/pprof/) on this address for the whole invocation; 127.0.0.1:0 picks a free port")

		dynCheck   = flag.Bool("dynamic-check", false, "with -exp dynamic: exit 1 unless the sparse warm path converges in at least 2x fewer total iterations than cold re-ranking")
		batchCheck = flag.Bool("batch-check", false, "with -exp batch: exit 1 unless modelled bytes-moved-per-query at B=16 is at least 4x lower than at B=1")

		baseline      = flag.String("baseline", "", "allocation-baseline mode: compare measured Exec allocation profiles against this BENCH_*.json file (exit 1 on regression) instead of running experiments")
		baselineWrite = flag.Bool("baseline-write", false, "with -baseline: (re)write the file from the current measurement instead of comparing")
		baselineOut   = flag.String("baseline-out", "", "with -baseline: also write the measured profile to this file (CI artifact)")
	)
	flag.Parse()

	if *metrics != "" {
		tel, err := telemetry.Start(*metrics, telemetry.Options{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "hipabench: %v\n", err)
			os.Exit(1)
		}
		defer tel.Close()
		fmt.Fprintf(os.Stderr, "hipabench: telemetry: serving %s/metrics (also /healthz, /debug/pprof/)\n", tel.URL())
	}

	cfg := harness.NewConfig()
	// Mirror the shared prep cache's traffic into the process-wide registry,
	// so -metrics-addr scrapes see hits/misses/coalesced builds live.
	cfg.Prep.Instrument(nil)
	cfg.Divisor = *divisor
	cfg.Iterations = *iters
	cfg.SchedSeed = *seed
	cfg.PrepParallelism = *prepPar
	switch *pfName {
	case "native":
		cfg.Native = true
	case "skylake", "haswell":
		cfg.Preset = *pfName
	default:
		fmt.Fprintf(os.Stderr, "hipabench: unknown platform %q (want skylake, haswell, or native)\n", *pfName)
		os.Exit(2)
	}
	if *datasets != "" {
		cfg.Datasets = strings.Split(*datasets, ",")
	}

	if *baseline != "" {
		os.Exit(runBaseline(cfg, *baseline, *baselineWrite, *baselineOut))
	}
	if *baselineWrite || *baselineOut != "" {
		fmt.Fprintln(os.Stderr, "hipabench: -baseline-write and -baseline-out require -baseline FILE")
		os.Exit(2)
	}

	type experiment struct {
		name string
		run  func() (*harness.Table, error)
	}
	var dynamicRows []harness.DynamicRow
	var batchRows []harness.BatchRow
	experiments := []experiment{
		{"table1", func() (*harness.Table, error) { _, t, err := harness.Table1(cfg); return t, err }},
		{"table2", func() (*harness.Table, error) { _, t, err := harness.Table2(cfg); return t, err }},
		{"overhead", func() (*harness.Table, error) { _, t, err := harness.Overhead(cfg); return t, err }},
		{"fig5", func() (*harness.Table, error) { _, t, err := harness.Fig5(cfg); return t, err }},
		{"fig6", func() (*harness.Table, error) { _, t, err := harness.Fig6(cfg); return t, err }},
		{"fig7", func() (*harness.Table, error) { _, t, err := harness.Fig7(cfg); return t, err }},
		{"table3", func() (*harness.Table, error) { _, t, err := harness.Table3(cfg); return t, err }},
		{"singlenode", func() (*harness.Table, error) { _, t, err := harness.SingleNode(cfg); return t, err }},
		{"nodescaling", func() (*harness.Table, error) { _, t, err := harness.NodeScaling(cfg, *ablGraph); return t, err }},
		{"frontier", func() (*harness.Table, error) { _, t, err := harness.Frontier(cfg, *ablGraph); return t, err }},
		{"dynamic", func() (*harness.Table, error) {
			r, t, err := harness.Dynamic(cfg, *ablGraph)
			dynamicRows = r
			return t, err
		}},
		{"batch", func() (*harness.Table, error) {
			r, t, err := harness.Batch(cfg, *ablGraph)
			batchRows = r
			return t, err
		}},
		{"ablation", func() (*harness.Table, error) { _, t, err := harness.Ablations(cfg, *ablGraph); return t, err }},
	}

	render := func(t *harness.Table, w *os.File) error { return t.Render(w) }
	switch *format {
	case "text":
	case "csv":
		render = func(t *harness.Table, w *os.File) error { return t.RenderCSV(w) }
	case "json":
		render = func(t *harness.Table, w *os.File) error { return t.RenderJSON(w) }
	default:
		fmt.Fprintf(os.Stderr, "hipabench: unknown format %q (want text, csv, or json)\n", *format)
		os.Exit(2)
	}

	if *repeat < 1 {
		fmt.Fprintln(os.Stderr, "hipabench: -repeat must be >= 1")
		os.Exit(2)
	}
	ran := false
	for _, e := range experiments {
		if *exp != "all" && *exp != e.name {
			continue
		}
		ran = true
		var t *harness.Table
		var err error
		for i := 0; i < *repeat; i++ {
			t, err = e.run()
			if err != nil {
				fmt.Fprintf(os.Stderr, "hipabench: %s: %v\n", e.name, err)
				os.Exit(1)
			}
		}
		if err := render(t, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "hipabench: render: %v\n", err)
			os.Exit(1)
		}
		fmt.Println()
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "hipabench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	if *dynCheck {
		if dynamicRows == nil {
			fmt.Fprintln(os.Stderr, "hipabench: -dynamic-check requires the dynamic experiment to run (-exp dynamic or -exp all)")
			os.Exit(2)
		}
		var warm, cold int
		for _, r := range dynamicRows {
			warm += r.DeltaIterations
			cold += r.ColdIterations
		}
		if 2*warm > cold {
			fmt.Fprintf(os.Stderr, "hipabench: dynamic check FAILED: sparse warm path spent %d iterations vs %d cold (want at least 2x fewer)\n", warm, cold)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "hipabench: dynamic check passed: %d warm vs %d cold iterations (%.2fx)\n", warm, cold, float64(cold)/float64(warm))
	}
	if *batchCheck {
		if batchRows == nil {
			fmt.Fprintln(os.Stderr, "hipabench: -batch-check requires the batch experiment to run (-exp batch or -exp all)")
			os.Exit(2)
		}
		var b1, b16 float64
		for _, r := range batchRows {
			switch r.B {
			case 1:
				b1 = r.BytesPerQuery
			case 16:
				b16 = r.BytesPerQuery
			}
		}
		if b1 == 0 || b16 == 0 {
			fmt.Fprintln(os.Stderr, "hipabench: batch check needs modelled traffic for B=1 and B=16 (run on a modelled platform)")
			os.Exit(2)
		}
		if 4*b16 > b1 {
			fmt.Fprintf(os.Stderr, "hipabench: batch check FAILED: %.0f bytes/query at B=16 vs %.0f at B=1 (%.2fx, want at least 4x)\n", b16, b1, b1/b16)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "hipabench: batch check passed: %.0f bytes/query at B=16 vs %.0f at B=1 (%.2fx)\n", b16, b1, b1/b16)
	}
	if s := cfg.Prep.Stats(); s.Hits+s.Misses > 0 {
		fmt.Fprintf(os.Stderr, "hipabench: prep cache: %d builds, %d hits (%d coalesced), %d evictions\n",
			s.Misses, s.Hits, s.Coalesced, s.Evictions)
	}
	if *format == "json" {
		if err := writeSummary(os.Stdout, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "hipabench: summary: %v\n", err)
			os.Exit(1)
		}
	}
}

// summarySchema versions the trailing JSON summary object; bump it when its
// shape changes so downstream parsers can dispatch.
const summarySchema = "hipabench.summary/v1"

// invocationSummary is the trailing JSON object of -format json mode.
type invocationSummary struct {
	Schema    string       `json:"schema"`
	PrepCache cacheSummary `json:"prep_cache"`
	Arenas    arenaSummary `json:"arenas"`
}

type cacheSummary struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Coalesced int64 `json:"coalesced"`
}

type arenaSummary struct {
	Created     int64 `json:"created"`
	Reused      int64 `json:"reused"`
	Outstanding int64 `json:"outstanding"`
}

// writeSummary emits the invocation-wide resource summary after the
// experiment tables in -format json mode: the shared prep cache's traffic
// and the process-wide scratch-arena counters (previously stderr-only).
func writeSummary(w *os.File, cfg *harness.Config) error {
	cache := cfg.Prep.Stats()
	arenas := execbuf.GlobalStats()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(invocationSummary{
		Schema:    summarySchema,
		PrepCache: cacheSummary{cache.Hits, cache.Misses, cache.Evictions, cache.Coalesced},
		Arenas:    arenaSummary{arenas.Created, arenas.Reused, execbuf.Outstanding()},
	})
}

// runBaseline executes the allocation-baseline mode: measure the Exec
// allocation profile of every engine on one dataset (the first of
// -datasets, defaulting to journal) and either write it to path
// (-baseline-write) or compare against the committed file, returning the
// process exit code.
func runBaseline(cfg *harness.Config, path string, write bool, outPath string) int {
	dataset := "journal"
	if len(cfg.Datasets) > 0 {
		dataset = cfg.Datasets[0]
	}
	measured, err := cfg.MeasureAllocBaseline(dataset)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hipabench: baseline: %v\n", err)
		return 1
	}
	if outPath != "" {
		if err := measured.WriteJSONFile(outPath); err != nil {
			fmt.Fprintf(os.Stderr, "hipabench: baseline: %v\n", err)
			return 1
		}
	}
	if write {
		if err := measured.WriteJSONFile(path); err != nil {
			fmt.Fprintf(os.Stderr, "hipabench: baseline: %v\n", err)
			return 1
		}
		fmt.Printf("hipabench: wrote allocation baseline %s (%s, divisor %d)\n", path, dataset, cfg.Divisor)
		return 0
	}
	committed, err := harness.ReadAllocBaseline(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hipabench: baseline: %v\n", err)
		return 1
	}
	if regressions := committed.Compare(measured); len(regressions) > 0 {
		fmt.Fprintf(os.Stderr, "hipabench: allocation regressions against %s:\n", path)
		for _, r := range regressions {
			fmt.Fprintf(os.Stderr, "  %s\n", r)
		}
		return 1
	}
	fmt.Printf("hipabench: allocation profile matches %s (%d engines, 0 allocs/iteration)\n", path, len(committed.Engines))
	return 0
}
