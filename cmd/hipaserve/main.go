// Command hipaserve is the long-running PageRank service: it loads a
// registry of graphs, holds their preprocessing artifacts hot, and serves
// rank queries, top-k listings, and adjacency over HTTP until stopped.
//
// Usage:
//
//	hipaserve -config serve.json [-listen 127.0.0.1:8080]
//	hipaserve -dataset wiki [-divisor 256] [-name wiki] [-listen ...]
//	hipaserve -graph g.bin [-divisor 1] [-name g] [-listen ...]
//
// -config names a JSON file in the serve.Config shape (a "graphs" array of
// {name, path | dataset, divisor} plus optional engine/preset/tolerance/
// concurrency settings). The single-graph flag form builds the equivalent
// one-entry config without a file. -listen overrides the config's address;
// 127.0.0.1:0 picks an ephemeral port. The bound URL is printed on stdout
// as "hipaserve: serving http://HOST:PORT" before the first request is
// accepted, so scripts can scrape it.
//
// Endpoints: GET /v1/rank, /v1/ppr, /v1/topk, /v1/neighbors, /v1/graphs; POST
// /v1/admin/reload with a mutation-stream body ("+/-/commit" lines) applies
// graph updates and atomically swaps the serving artifact — in-flight
// queries finish on the version they started with. /metrics, /healthz,
// /runs, and /debug/pprof/ serve telemetry on the same listener.
//
// SIGINT/SIGTERM shut the server down gracefully: the listener closes,
// in-flight requests drain (bounded by -shutdown-timeout, 0 = wait
// indefinitely), and the process exits 0.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hipa/internal/serve"
)

func main() {
	var (
		configPath = flag.String("config", "", "JSON config file (serve.Config shape); overrides the single-graph flags")
		graphPath  = flag.String("graph", "", "serve one binary HGR1 graph file")
		dataset    = flag.String("dataset", "", "serve one generated catalog analog: journal, pld, wiki, kron, twitter, mpi")
		divisor    = flag.Int("divisor", 0, "scale divisor for -graph/-dataset (0 = dataset default)")
		name       = flag.String("name", "", "registry name for the single-graph form (default: dataset or file name)")
		engine     = flag.String("engine", "", "serving engine (default hipa)")
		listen     = flag.String("listen", "", "listen address (default config's, else 127.0.0.1:8080; :0 = ephemeral)")
		tol        = flag.Float64("tol", 0, "convergence tolerance (default 1e-7)")
		threads    = flag.Int("threads", 0, "Exec worker threads (0 = all cores)")
		maxExecs   = flag.Int("max-execs", 0, "max concurrent Execs (0 = all cores)")
		shutdownTO = flag.Duration("shutdown-timeout", 10*time.Second, "graceful-shutdown bound; 0 waits for in-flight requests indefinitely")
	)
	flag.Parse()
	if err := run(*configPath, *graphPath, *dataset, *divisor, *name, *engine, *listen, *tol, *threads, *maxExecs, *shutdownTO); err != nil {
		fmt.Fprintln(os.Stderr, "hipaserve:", err)
		os.Exit(1)
	}
}

func run(configPath, graphPath, dataset string, divisor int, name, engine, listen string, tol float64, threads, maxExecs int, shutdownTO time.Duration) error {
	cfg, err := buildConfig(configPath, graphPath, dataset, divisor, name)
	if err != nil {
		return err
	}
	if engine != "" {
		cfg.Engine = engine
	}
	if tol != 0 {
		cfg.Tolerance = tol
	}
	if threads != 0 {
		cfg.Threads = threads
	}
	if maxExecs != 0 {
		cfg.MaxConcurrentExecs = maxExecs
	}
	if listen != "" {
		cfg.Listen = listen
	}
	if cfg.Listen == "" {
		cfg.Listen = "127.0.0.1:8080"
	}

	for _, g := range cfg.Graphs {
		fmt.Printf("hipaserve: loading %s\n", describeSpec(g))
	}
	start := time.Now()
	svc, err := serve.New(cfg)
	if err != nil {
		return err
	}
	defer svc.Close()
	fmt.Printf("hipaserve: %d graph(s) prepared in %.2fs (engine %s)\n", len(cfg.Graphs), time.Since(start).Seconds(), svc.EngineName())

	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: svc.Handler(), ReadHeaderTimeout: 5 * time.Second}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	fmt.Printf("hipaserve: serving http://%s\n", ln.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case s := <-sig:
		fmt.Printf("hipaserve: %s, shutting down\n", s)
	}
	ctx := context.Background()
	if shutdownTO > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, shutdownTO)
		defer cancel()
	}
	if err := srv.Shutdown(ctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	return nil
}

// buildConfig loads -config, or assembles a one-graph config from the flag
// form.
func buildConfig(configPath, graphPath, dataset string, divisor int, name string) (serve.Config, error) {
	var cfg serve.Config
	if configPath != "" {
		if graphPath != "" || dataset != "" {
			return cfg, fmt.Errorf("-config excludes -graph/-dataset")
		}
		b, err := os.ReadFile(configPath)
		if err != nil {
			return cfg, err
		}
		if err := json.Unmarshal(b, &cfg); err != nil {
			return cfg, fmt.Errorf("%s: %w", configPath, err)
		}
		return cfg, nil
	}
	spec := serve.GraphSpec{Name: name, Path: graphPath, Dataset: dataset, Divisor: divisor}
	if spec.Name == "" {
		switch {
		case dataset != "":
			spec.Name = dataset
		case graphPath != "":
			spec.Name = trimExt(graphPath)
		default:
			return cfg, fmt.Errorf("need -config, -graph, or -dataset (run with -h for usage)")
		}
	}
	cfg.Graphs = []serve.GraphSpec{spec}
	return cfg, nil
}

// trimExt reduces a path to its base name without extension, the default
// registry name for file-served graphs.
func trimExt(path string) string {
	base := path
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			base = path[i+1:]
			break
		}
	}
	for i := len(base) - 1; i >= 0; i-- {
		if base[i] == '.' {
			return base[:i]
		}
	}
	return base
}

func describeSpec(g serve.GraphSpec) string {
	if g.Path != "" {
		return fmt.Sprintf("%s (file %s)", g.Name, g.Path)
	}
	return fmt.Sprintf("%s (generated %s /%d)", g.Name, g.Dataset, g.Divisor)
}
