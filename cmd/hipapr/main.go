// Command hipapr runs PageRank on a graph file with a chosen engine and
// prints timing, memory metrics, and the top-ranked vertices.
//
// Usage:
//
//	hipapr -graph g.bin [-engine hipa|p-pr|v-pr|gpop|polymer]
//	       [-iters 20] [-threads 0] [-partition 256K] [-machine skylake]
//	       [-divisor 1] [-top 10] [-verify]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"hipa/internal/engines/common"
	"hipa/internal/graph"
	"hipa/internal/harness"
	"hipa/internal/machine"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "binary HGR1 graph file (required)")
		engine    = flag.String("engine", "hipa", "engine: hipa, p-pr, v-pr, gpop, polymer")
		iters     = flag.Int("iters", 20, "iterations")
		threads   = flag.Int("threads", 0, "worker threads (0 = engine default)")
		partition = flag.String("partition", "", "partition size, e.g. 256K or 1M (default: engine default)")
		preset    = flag.String("machine", "skylake", "machine preset: skylake or haswell")
		divisor   = flag.Int("divisor", 1, "machine capacity scale divisor (match the graph's)")
		top       = flag.Int("top", 10, "print the top-K ranked vertices")
		verify    = flag.Bool("verify", false, "validate against the sequential float64 reference")
		damping   = flag.Float64("damping", 0.85, "damping factor")
	)
	flag.Parse()
	if *graphPath == "" {
		fail("missing -graph")
	}
	g, err := graph.LoadBinary(*graphPath)
	if err != nil {
		fail(err.Error())
	}
	e, err := harness.EngineByName(*engine)
	if err != nil {
		fail(err.Error())
	}
	mk, ok := machine.Presets[*preset]
	if !ok {
		fail("unknown machine preset " + *preset)
	}
	m := machine.Scaled(mk(), *divisor)

	o := common.Options{
		Machine:    m,
		Iterations: *iters,
		Threads:    *threads,
		Damping:    *damping,
	}
	if *partition != "" {
		pb, err := parseSize(*partition)
		if err != nil {
			fail(err.Error())
		}
		o.PartitionBytes = pb
	} else if *divisor > 1 {
		// Scale the paper's 256KB default with the machine divisor so the
		// partition-to-cache ratio stays at paper scale.
		pb := 256 << 10 / *divisor
		if pb < 16 {
			pb = 16
		}
		o.PartitionBytes = pb
	}

	res, err := e.Run(g, o)
	if err != nil {
		fail(err.Error())
	}
	fmt.Printf("engine     : %s (%d threads, %d iterations)\n", res.Engine, res.Threads, res.Iterations)
	fmt.Printf("graph      : %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())
	fmt.Printf("wall       : %.4fs (+ %.4fs preprocessing)\n", res.WallSeconds, res.PrepSeconds)
	fmt.Printf("modelled   : %.4fs on %s\n", res.Model.EstimatedSeconds, m)
	fmt.Printf("memory     : %.2f bytes/edge (%.1f%% remote)\n", res.Model.MApE, 100*res.Model.RemoteFraction)
	fmt.Printf("scheduler  : %d spawns, %d migrations\n", res.Sched.Spawned, res.Sched.Migrations)

	if *verify {
		ref := common.ReferencePageRank(g, *iters, *damping)
		var worst float64
		for v := range ref {
			d := ref[v] - float64(res.Ranks[v])
			if d < 0 {
				d = -d
			}
			if d > worst {
				worst = d
			}
		}
		fmt.Printf("verify     : max abs error vs reference = %.2e\n", worst)
	}

	if *top > 0 {
		fmt.Printf("top %d vertices by rank:\n", *top)
		for _, v := range topK(res.Ranks, *top) {
			fmt.Printf("  %8d  %.6g\n", v, res.Ranks[v])
		}
	}
}

func topK(ranks []float32, k int) []int {
	if k > len(ranks) {
		k = len(ranks)
	}
	idx := make([]int, len(ranks))
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < k; i++ {
		best := i
		for j := i + 1; j < len(idx); j++ {
			if ranks[idx[j]] > ranks[idx[best]] {
				best = j
			}
		}
		idx[i], idx[best] = idx[best], idx[i]
	}
	return idx[:k]
}

func parseSize(s string) (int, error) {
	s = strings.ToUpper(strings.TrimSpace(s))
	mult := 1
	switch {
	case strings.HasSuffix(s, "K"):
		mult, s = 1<<10, strings.TrimSuffix(s, "K")
	case strings.HasSuffix(s, "M"):
		mult, s = 1<<20, strings.TrimSuffix(s, "M")
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return n * mult, nil
}

func fail(msg string) {
	fmt.Fprintln(os.Stderr, "hipapr:", msg)
	os.Exit(1)
}
