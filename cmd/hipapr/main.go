// Command hipapr runs PageRank on a graph file with a chosen engine and
// prints timing, memory metrics, and the top-ranked vertices.
//
// Usage:
//
//	hipapr -graph g.bin [-engine hipa|p-pr|v-pr|gpop|polymer|ec-hipa|nb-pr|delta]
//	       [-iters 20] [-threads 0] [-partition 256K] [-platform skylake]
//	       [-divisor 1] [-top 10] [-verify] [-verify-tol 1e-6] [-tol 0]
//	       [-repeat 1] [-stats s.json] [-trace t.json]
//	       [-mutations m.txt] [-metrics-addr 127.0.0.1:0]
//
// -platform selects the execution substrate: a modelled microarchitecture
// (skylake, haswell — full scheduler/NUMA/cache simulation and a
// performance report) or native (pure wall-clock execution; modelled
// metrics are reported as zero, never fabricated, and the native run pays
// no modelling overhead).
// -repeat N prepares the engine's preprocessing artifact once and executes
// the iterative phase N times against it (the prepare-once / query-many
// serving pattern); the report and printout describe the last execution,
// plus an amortization line over all N and the scratch-arena reuse count
// (sequential Execs against one artifact recycle a single arena — see the
// Exec memory model in DESIGN.md).
// -stats writes a machine-readable run report (per-iteration residuals,
// dangling mass, modelled local/remote accesses, counters, phase timers).
// -trace writes a Chrome trace_event file loadable in chrome://tracing or
// https://ui.perfetto.dev, with one lane per simulated thread. Both -stats
// and -trace files are written atomically (temp file + rename).
// -metrics-addr serves live telemetry on the given address for the whole
// run (pass 127.0.0.1:0 for an ephemeral port; the bound URL is printed
// first): /metrics is Prometheus text exposition with superstep-latency,
// prep-stage, cache, and arena series, /healthz a liveness probe, /runs the
// recent run reports as JSON, /debug/pprof/ the Go profiler. Useful with
// -repeat, where a long loop can be scraped and profiled mid-flight.
// -verify exits nonzero (with the diff on stderr) when the L∞ error
// against the sequential float64 reference exceeds -verify-tol.
// -tol enables residual-based early termination at the given tolerance
// (engines that prune or warm-start default internally when 0).
// -mutations replays a mutation-stream file ("+/-/commit" lines — see
// graph.ReadMutationBatches) after the base run: each batch is applied to a
// versioned copy of the graph, the preprocessing artifact is patched
// forward with Prepared.Advance, and the engine re-ranks warm from the
// previous version's ranks — densely for hipa, sparsely (delta-seeded) for
// the delta engine. Other engines cannot warm-start and reject the flag.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"hipa/internal/engines/common"
	deltaengine "hipa/internal/engines/delta"
	"hipa/internal/execbuf"
	"hipa/internal/graph"
	"hipa/internal/harness"
	"hipa/internal/machine"
	"hipa/internal/obs"
	"hipa/internal/obs/telemetry"
	"hipa/internal/platform"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "binary HGR1 graph file (required)")
		engine    = flag.String("engine", "hipa", "engine: hipa, p-pr, v-pr, gpop, polymer, ec-hipa (ec), nb-pr (nb)")
		iters     = flag.Int("iters", 20, "iterations")
		threads   = flag.Int("threads", 0, "worker threads (0 = engine default)")
		partition = flag.String("partition", "", "partition size, e.g. 256K or 1M (default: engine default)")
		pfName    = flag.String("platform", "skylake", "execution platform: skylake, haswell (modelled), or native (wall-clock only)")
		divisor   = flag.Int("divisor", 1, "machine capacity scale divisor (match the graph's)")
		top       = flag.Int("top", 10, "print the top-K ranked vertices")
		verify    = flag.Bool("verify", false, "validate against the sequential float64 reference; exit 1 on failure")
		verifyTol = flag.Float64("verify-tol", 1e-6, "max abs error tolerated by -verify")
		tol       = flag.Float64("tol", 0, "convergence tolerance for residual-based early termination (0 = run all -iters; pruning/warm engines default internally)")
		mutPath   = flag.String("mutations", "", "replay a mutation-stream file with warm incremental re-ranks (engine hipa or delta)")
		damping   = flag.Float64("damping", 0.85, "damping factor")
		repeat    = flag.Int("repeat", 1, "execute the iterative phase N times against one prepared artifact")
		prepPar   = flag.Int("prep-parallelism", 0, "Prepare-pipeline worker count (0 = all cores, 1 = serial); artifacts are identical at any setting")
		statsPath = flag.String("stats", "", "write a machine-readable run report (JSON) to this file")
		tracePath = flag.String("trace", "", "write a Chrome trace_event file (JSON) to this file")
		metrics   = flag.String("metrics-addr", "", "serve live telemetry (/metrics, /healthz, /runs, /debug/pprof/) on this address for the whole run; 127.0.0.1:0 picks a free port")
	)
	flag.Parse()
	e, err := harness.EngineByName(*engine)
	if err != nil {
		// Spell out every accepted value, one per line, instead of a bare
		// unknown-engine error — and do it before touching the graph file,
		// so the listing works without a valid -graph.
		fmt.Fprintf(os.Stderr, "hipapr: unknown engine %q; available engines:\n", *engine)
		for _, name := range harness.EngineNames() {
			fmt.Fprintf(os.Stderr, "  %s\n", name)
		}
		os.Exit(2)
	}
	if *graphPath == "" {
		fail("missing -graph")
	}
	g, err := graph.LoadBinary(*graphPath)
	if err != nil {
		fail(err.Error())
	}
	// "native" runs on the default (Skylake) topology for structural
	// decisions — partitioning, NUMA placement — but skips all modelling.
	native := *pfName == "native"
	presetName := *pfName
	if native {
		presetName = "skylake"
	}
	mk, ok := machine.Presets[presetName]
	if !ok {
		fail("unknown platform " + *pfName + " (want skylake, haswell, or native)")
	}
	m := machine.Scaled(mk(), *divisor)

	// Live telemetry, bound before any heavy work so a scraper can attach
	// from the very start of the run.
	var tel *telemetry.Server
	if *metrics != "" {
		tel, err = telemetry.Start(*metrics, telemetry.Options{})
		if err != nil {
			fail(err.Error())
		}
		defer tel.Close()
		fmt.Printf("telemetry  : serving %s/metrics (also /healthz, /runs, /debug/pprof/)\n", tel.URL())
	}

	var rec *obs.Recorder
	if *statsPath != "" || *tracePath != "" {
		rec = &obs.Recorder{Collector: obs.NewCollector()}
		if *tracePath != "" {
			rec.Trace = obs.NewTrace()
		}
	}

	o := common.Options{
		Machine:         m,
		Iterations:      *iters,
		Threads:         *threads,
		Damping:         *damping,
		Tolerance:       *tol,
		PrepParallelism: *prepPar,
		Obs:             rec,
	}
	if tel != nil {
		// Route Prepare through an instrumented artifact cache so the cache
		// series appear on /metrics (a single run records one build).
		cache := common.NewPrepCache(0)
		cache.Instrument(nil)
		o.PrepCache = cache
	}
	if native {
		o.Platform = platform.NewNative(m)
	}
	if *partition != "" {
		pb, err := parseSize(*partition)
		if err != nil {
			fail(err.Error())
		}
		o.PartitionBytes = pb
	}
	// When -partition is absent the engines derive the size from the scaled
	// machine's cache geometry (machine.TunedPartitionBytes), which keeps
	// the partition-to-cache ratio at paper scale for any divisor.

	if *repeat < 1 {
		fail("-repeat must be >= 1")
	}
	var res *common.Result
	var execTotal float64
	var arenas execbuf.PoolStats
	if *repeat == 1 {
		res, err = e.Run(g, o)
		if err != nil {
			fail(err.Error())
		}
		execTotal = res.WallSeconds
		if tel != nil {
			tel.Runs().Add(harness.NewRunReport(g, m, res, rec))
		}
	} else {
		// Prepare once (with the recorder, so prep spans/phases land in the
		// report), then execute repeatedly. Only the last execution carries
		// the recorder: per-iteration stats describe one run, not N merged.
		prep, err := e.Prepare(g, o)
		if err != nil {
			fail(err.Error())
		}
		quiet := o
		quiet.Obs = nil
		for i := 0; i < *repeat-1; i++ {
			r, err := e.Exec(prep, quiet)
			if err != nil {
				fail(err.Error())
			}
			execTotal += r.WallSeconds
			if tel != nil {
				tel.Runs().Add(harness.NewRunReport(g, m, r, nil))
			}
		}
		res, err = e.Exec(prep, o)
		if err != nil {
			fail(err.Error())
		}
		execTotal += res.WallSeconds
		if tel != nil {
			tel.Runs().Add(harness.NewRunReport(g, m, res, rec))
		}
		arenas = prep.ArenaStats()
	}
	fmt.Printf("engine     : %s (%d threads, %d iterations)\n", res.Engine, res.Threads, res.Iterations)
	fmt.Printf("graph      : %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())
	fmt.Printf("wall       : %.4fs (+ %.4fs preprocessing)\n", res.WallSeconds, res.PrepSeconds)
	if *repeat > 1 {
		fmt.Printf("amortized  : %d executions in %.4fs; prep is %.1f%% of total\n",
			*repeat, execTotal, 100*res.PrepSeconds/(res.PrepSeconds+execTotal))
		fmt.Printf("arena      : %d allocated, %d reused (sequential Execs recycle one scratch arena)\n",
			arenas.Created, arenas.Reused)
	}
	if native {
		fmt.Printf("modelled   : skipped (native platform; wall-clock only)\n")
	} else {
		fmt.Printf("modelled   : %.4fs on %s\n", res.Model.EstimatedSeconds, m)
		fmt.Printf("memory     : %.2f bytes/edge (%.1f%% remote)\n", res.Model.MApE, 100*res.Model.RemoteFraction)
		fmt.Printf("scheduler  : %d spawns, %d migrations\n", res.Sched.Spawned, res.Sched.Migrations)
	}

	if *statsPath != "" {
		if err := harness.NewRunReport(g, m, res, rec).WriteJSONFile(*statsPath); err != nil {
			fail(err.Error())
		}
		fmt.Printf("stats      : wrote %s (%d iterations)\n", *statsPath, len(res.Iters))
	}
	if *tracePath != "" {
		if err := rec.T().WriteJSONFile(*tracePath); err != nil {
			fail(err.Error())
		}
		fmt.Printf("trace      : wrote %s (%d spans; load in chrome://tracing or ui.perfetto.dev)\n",
			*tracePath, rec.T().NumSpans())
	}

	verifyFailed := false
	if *verify {
		ref := common.ReferencePageRank(g, res.Iterations, *damping)
		var worst float64
		for v := range ref {
			d := ref[v] - float64(res.Ranks[v])
			if d < 0 {
				d = -d
			}
			if d > worst {
				worst = d
			}
		}
		if worst > *verifyTol {
			verifyFailed = true
			fmt.Fprintf(os.Stderr, "hipapr: verification FAILED: max abs error vs reference = %.6e exceeds tolerance %.6e\n", worst, *verifyTol)
		} else {
			fmt.Printf("verify     : OK, max abs error vs reference = %.2e (tolerance %.2e)\n", worst, *verifyTol)
		}
	}

	if *mutPath != "" {
		res = replayMutations(e, g, o, res, *mutPath)
	}

	if *top > 0 {
		fmt.Printf("top %d vertices by rank:\n", *top)
		for _, v := range topK(res.Ranks, *top) {
			fmt.Printf("  %8d  %.6g\n", v, res.Ranks[v])
		}
	}
	if verifyFailed {
		os.Exit(1)
	}
}

// replayMutations applies each batch of a mutation-stream file to a
// versioned copy of g, patches the engine's artifact forward with
// Prepared.Advance, and re-ranks warm from the previous version's ranks.
// Returns the final version's result so the top-K listing reflects it.
func replayMutations(e common.Engine, g *graph.Graph, o common.Options, base *common.Result, path string) *common.Result {
	sparse := false
	switch e.Name() {
	case "HiPa":
	case deltaengine.Name:
		sparse = true
	default:
		fail(fmt.Sprintf("-mutations needs a warm-startable engine (hipa or delta), not %s", e.Name()))
	}
	f, err := os.Open(path)
	if err != nil {
		fail(err.Error())
	}
	batches, err := graph.ReadMutationBatches(f)
	f.Close()
	if err != nil {
		fail(err.Error())
	}
	mode := "dense (full warm resume)"
	if sparse {
		mode = "sparse (delta-seeded)"
	}
	fmt.Printf("mutations  : replaying %d batches from %s, %s warm re-ranks\n", len(batches), path, mode)
	o.Obs = nil
	prep, err := e.Prepare(g, o)
	if err != nil {
		fail(err.Error())
	}
	vg := graph.NewVersioned(g)
	res := base
	for i, b := range batches {
		from := vg.Version()
		ver, err := vg.ApplyBatch(b)
		if err != nil {
			fail(fmt.Sprintf("batch %d: %v", i+1, err))
		}
		d, err := vg.DeltaBetween(from, ver)
		if err != nil {
			fail(err.Error())
		}
		if prep, err = prep.Advance(d, o); err != nil {
			fail(fmt.Sprintf("batch %d: advance: %v", i+1, err))
		}
		oW := o
		oW.Warm = &common.WarmStart{Ranks: res.Ranks}
		if sparse {
			oW.Warm.Delta = d
		}
		if res, err = e.Exec(prep, oW); err != nil {
			fail(fmt.Sprintf("batch %d: %v", i+1, err))
		}
		prepMode := "patched"
		if !prep.Incremental {
			prepMode = "rebuilt cold"
		}
		fmt.Printf("  batch %-3d: v%d, +%d -%d edges (%d vertices perturbed); prep %s in %.4fs; %d iterations, %.4fs\n",
			i+1, ver, d.Inserted, d.Deleted, len(d.Perturbed), prepMode, prep.PrepSeconds, res.Iterations, res.WallSeconds)
	}
	return res
}

func topK(ranks []float32, k int) []int {
	if k > len(ranks) {
		k = len(ranks)
	}
	idx := make([]int, len(ranks))
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < k; i++ {
		best := i
		for j := i + 1; j < len(idx); j++ {
			if ranks[idx[j]] > ranks[idx[best]] {
				best = j
			}
		}
		idx[i], idx[best] = idx[best], idx[i]
	}
	return idx[:k]
}

func parseSize(s string) (int, error) {
	s = strings.ToUpper(strings.TrimSpace(s))
	mult := 1
	switch {
	case strings.HasSuffix(s, "K"):
		mult, s = 1<<10, strings.TrimSuffix(s, "K")
	case strings.HasSuffix(s, "M"):
		mult, s = 1<<20, strings.TrimSuffix(s, "M")
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return n * mult, nil
}

func fail(msg string) {
	fmt.Fprintln(os.Stderr, "hipapr:", msg)
	os.Exit(1)
}
