// Command promcheck validates a Prometheus text exposition document (as
// served by -metrics-addr /metrics endpoints) on stdin: it parses with the
// strict obs.ParseExposition rules, optionally asserts that required metric
// families are present (-require, comma-separated; name=labelkey:labelvalue
// pairs append series constraints), and prints a one-line summary. Exit
// status 1 means invalid or missing; CI's telemetry smoke pipes curl output
// through it.
//
//	curl -s "$URL/metrics" | promcheck -require hipa_superstep_seconds,hipa_prep_cache_hits_total
//	curl -s "$URL/metrics" | promcheck -require 'hipa_superstep_seconds=engine:HiPa'
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hipa/internal/obs"
)

func main() {
	require := flag.String("require", "", "comma-separated metric families that must be present; name=key:value additionally requires a series with that label")
	flag.Parse()

	doc, err := obs.ParseExposition(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "promcheck: invalid exposition: %v\n", err)
		os.Exit(1)
	}
	missing := []string{}
	if *require != "" {
		for _, req := range strings.Split(*require, ",") {
			req = strings.TrimSpace(req)
			if req == "" {
				continue
			}
			name, labelExpr, hasLabel := strings.Cut(req, "=")
			ok := doc.HasFamily(name)
			if ok && hasLabel {
				k, v, good := strings.Cut(labelExpr, ":")
				if !good {
					fmt.Fprintf(os.Stderr, "promcheck: bad -require entry %q (want name=key:value)\n", req)
					os.Exit(2)
				}
				ok = doc.HasSeries(name, k, v)
			}
			if !ok {
				missing = append(missing, req)
			}
		}
	}
	if len(missing) > 0 {
		fmt.Fprintf(os.Stderr, "promcheck: missing required series: %s\n", strings.Join(missing, ", "))
		os.Exit(1)
	}
	fmt.Printf("promcheck: ok (%d samples, %d families)\n", len(doc.Series), len(doc.Types))
}
