// Command loadgen drives a running hipaserve with closed-loop query
// traffic and reports throughput and latency percentiles.
//
// Usage:
//
//	loadgen -url http://127.0.0.1:8080 [-graph wiki] [-duration 5s]
//	        [-workers 8] [-zipf 1.2] [-seed 1]
//	        [-rank 6 -topk 2 -neighbors 2]
//	loadgen -url ... -coalesce-probe 16
//	loadgen -url ... -ppr-burst 32
//
// The default mode runs -workers closed-loop workers (each sends its next
// request as soon as the previous response is read) for -duration, mixing
// GET /v1/rank, /v1/topk, and /v1/neighbors in the given integer weights.
// Vertex IDs are drawn from a zipfian distribution over the graph's vertex
// range — hot vertices dominate, like real query traffic. The report
// prints per-endpoint and overall request counts, error counts, and
// p50/p95/p99 latency, plus a one-line machine-readable summary:
//
//	loadgen: total=12345 errors=0 qps=2469.0 p50ms=2.1 p95ms=5.0 p99ms=7.9
//
// The exit status is nonzero when any request failed, so smoke scripts can
// gate on a clean run.
//
// -coalesce-probe K instead fires K barrier-synchronized identical
// recompute requests (GET /v1/rank?recompute=1): all K are released at
// once, so a correctly coalescing server runs one Exec and joins the other
// K-1 onto it — visible in hipa_serve_exec_coalesced_total. The probe
// reports the K latencies and the same summary line.
//
// -ppr-burst K fires K barrier-synchronized personalized-PageRank queries
// (GET /v1/ppr) with distinct seed vertices: the server's request queue
// should coalesce them into a few batched Execs rather than K singles.
// Each response carries the width of the batch it rode in; the probe
// reports the distribution and a machine-readable line:
//
//	loadgen: ppr_queries=32 errors=0 max_batch=16 mean_batch=10.7
//
// so smoke scripts can assert max_batch > 1 (batching actually engaged).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"
)

func main() {
	var (
		baseURL  = flag.String("url", "", "hipaserve base URL (required), e.g. http://127.0.0.1:8080")
		graph    = flag.String("graph", "", "graph name (default: the server's only graph)")
		duration = flag.Duration("duration", 5*time.Second, "how long to run the closed loop")
		workers  = flag.Int("workers", 8, "closed-loop worker count")
		zipfS    = flag.Float64("zipf", 1.2, "zipfian skew for vertex picks (s > 1)")
		seed     = flag.Int64("seed", 1, "vertex-pick RNG seed")
		wRank    = flag.Int("rank", 6, "mix weight of /v1/rank")
		wTopK    = flag.Int("topk", 2, "mix weight of /v1/topk")
		wNb      = flag.Int("neighbors", 2, "mix weight of /v1/neighbors")
		probe    = flag.Int("coalesce-probe", 0, "fire K synchronized identical recompute requests instead of the closed loop")
		pprBurst = flag.Int("ppr-burst", 0, "fire K synchronized personalized-PageRank queries instead of the closed loop")
	)
	flag.Parse()
	if *baseURL == "" {
		fmt.Fprintln(os.Stderr, "loadgen: -url is required")
		os.Exit(2)
	}
	if err := run(*baseURL, *graph, *duration, *workers, *zipfS, *seed, [3]int{*wRank, *wTopK, *wNb}, *probe, *pprBurst); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

// sample is one completed request.
type sample struct {
	endpoint string
	latency  time.Duration
	ok       bool
}

func run(baseURL, graphName string, duration time.Duration, workers int, zipfS float64, seed int64, weights [3]int, probe, pprBurst int) error {
	client := &http.Client{Timeout: 30 * time.Second}
	vertices, err := discoverGraph(client, baseURL, &graphName)
	if err != nil {
		return err
	}
	fmt.Printf("loadgen: target %s graph=%s vertices=%d\n", baseURL, graphName, vertices)

	var samples []sample
	var elapsed time.Duration
	switch {
	case pprBurst > 0:
		samples, elapsed = runPPRBurst(client, baseURL, graphName, vertices, pprBurst)
	case probe > 0:
		samples, elapsed = runProbe(client, baseURL, graphName, probe)
	default:
		samples, elapsed = runClosedLoop(client, baseURL, graphName, vertices, duration, workers, zipfS, seed, weights)
	}
	return report(samples, elapsed)
}

// discoverGraph asks /v1/graphs for the target graph's vertex count,
// defaulting the name when the server has exactly one graph.
func discoverGraph(client *http.Client, baseURL string, name *string) (int, error) {
	var doc struct {
		Graphs []struct {
			Name     string `json:"name"`
			Vertices int    `json:"vertices"`
		} `json:"graphs"`
	}
	if err := getJSON(client, baseURL+"/v1/graphs", &doc); err != nil {
		return 0, fmt.Errorf("discovering graphs: %w", err)
	}
	if len(doc.Graphs) == 0 {
		return 0, fmt.Errorf("server lists no graphs")
	}
	if *name == "" {
		if len(doc.Graphs) > 1 {
			return 0, fmt.Errorf("server has %d graphs; pick one with -graph", len(doc.Graphs))
		}
		*name = doc.Graphs[0].Name
	}
	for _, g := range doc.Graphs {
		if g.Name == *name {
			return g.Vertices, nil
		}
	}
	return 0, fmt.Errorf("graph %q not served", *name)
}

// runClosedLoop runs the worker pool for the configured duration.
func runClosedLoop(client *http.Client, baseURL, graphName string, vertices int, duration time.Duration, workers int, zipfS float64, seed int64, weights [3]int) ([]sample, time.Duration) {
	wTotal := weights[0] + weights[1] + weights[2]
	if wTotal <= 0 {
		weights, wTotal = [3]int{1, 0, 0}, 1
	}
	results := make(chan []sample, workers)
	start := time.Now()
	deadline := start.Add(duration)
	for w := 0; w < workers; w++ {
		go func(w int) {
			rng := rand.New(rand.NewSource(seed + int64(w)))
			zipf := rand.NewZipf(rng, zipfS, 1, uint64(vertices-1))
			var out []sample
			for time.Now().Before(deadline) {
				var url, endpoint string
				switch pick := rng.Intn(wTotal); {
				case pick < weights[0]:
					endpoint = "rank"
					url = fmt.Sprintf("%s/v1/rank?graph=%s&vertex=%d", baseURL, graphName, zipf.Uint64())
				case pick < weights[0]+weights[1]:
					endpoint = "topk"
					url = fmt.Sprintf("%s/v1/topk?graph=%s&k=10", baseURL, graphName)
				default:
					endpoint = "neighbors"
					url = fmt.Sprintf("%s/v1/neighbors?graph=%s&vertex=%d&limit=32", baseURL, graphName, zipf.Uint64())
				}
				t0 := time.Now()
				ok := getOK(client, url)
				out = append(out, sample{endpoint, time.Since(t0), ok})
			}
			results <- out
		}(w)
	}
	var samples []sample
	for w := 0; w < workers; w++ {
		samples = append(samples, <-results...)
	}
	return samples, time.Since(start)
}

// runProbe releases K identical recompute requests through a barrier so
// they arrive together; a coalescing server runs one Exec for all of them.
func runProbe(client *http.Client, baseURL, graphName string, k int) ([]sample, time.Duration) {
	url := fmt.Sprintf("%s/v1/rank?graph=%s&vertex=0&recompute=1", baseURL, graphName)
	release := make(chan struct{})
	results := make(chan sample, k)
	var ready sync.WaitGroup
	ready.Add(k)
	for i := 0; i < k; i++ {
		go func() {
			ready.Done()
			<-release
			t0 := time.Now()
			ok := getOK(client, url)
			results <- sample{"rank-recompute", time.Since(t0), ok}
		}()
	}
	ready.Wait()
	start := time.Now()
	close(release)
	samples := make([]sample, 0, k)
	for i := 0; i < k; i++ {
		samples = append(samples, <-results)
	}
	return samples, time.Since(start)
}

// runPPRBurst releases K personalized-PageRank queries with distinct seed
// vertices through a barrier so they hit the server's request queue
// together; a batching server coalesces them into a few wide Execs. Each
// response reports the width of the batch that served it, which the probe
// aggregates into the ppr summary line.
func runPPRBurst(client *http.Client, baseURL, graphName string, vertices, k int) ([]sample, time.Duration) {
	release := make(chan struct{})
	type pprResult struct {
		s     sample
		batch int
	}
	results := make(chan pprResult, k)
	var ready sync.WaitGroup
	ready.Add(k)
	for i := 0; i < k; i++ {
		go func(i int) {
			url := fmt.Sprintf("%s/v1/ppr?graph=%s&seeds=%d&k=5", baseURL, graphName, i%vertices)
			ready.Done()
			<-release
			var doc struct {
				Batch int `json:"batch"`
			}
			t0 := time.Now()
			err := getJSON(client, url, &doc)
			results <- pprResult{sample{"ppr", time.Since(t0), err == nil}, doc.Batch}
		}(i)
	}
	ready.Wait()
	start := time.Now()
	close(release)
	samples := make([]sample, 0, k)
	maxBatch, batchSum, errors := 0, 0, 0
	for i := 0; i < k; i++ {
		r := <-results
		samples = append(samples, r.s)
		if !r.s.ok {
			errors++
			continue
		}
		batchSum += r.batch
		if r.batch > maxBatch {
			maxBatch = r.batch
		}
	}
	mean := 0.0
	if ok := k - errors; ok > 0 {
		mean = float64(batchSum) / float64(ok)
	}
	fmt.Printf("loadgen: ppr_queries=%d errors=%d max_batch=%d mean_batch=%.1f\n",
		k, errors, maxBatch, mean)
	return samples, time.Since(start)
}

func getOK(client *http.Client, url string) bool {
	resp, err := client.Get(url)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

func getJSON(client *http.Client, url string, out any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// report prints per-endpoint and overall latency percentiles plus the
// machine-readable summary line; the error return is non-nil when any
// request failed.
func report(samples []sample, elapsed time.Duration) error {
	if len(samples) == 0 {
		return fmt.Errorf("no requests completed")
	}
	byEndpoint := map[string][]time.Duration{}
	var all []time.Duration
	errors := 0
	for _, s := range samples {
		if !s.ok {
			errors++
			continue
		}
		byEndpoint[s.endpoint] = append(byEndpoint[s.endpoint], s.latency)
		all = append(all, s.latency)
	}
	names := make([]string, 0, len(byEndpoint))
	for name := range byEndpoint {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Printf("%-16s %8s %10s %10s %10s\n", "endpoint", "count", "p50", "p95", "p99")
	for _, name := range names {
		lat := byEndpoint[name]
		fmt.Printf("%-16s %8d %10s %10s %10s\n", name, len(lat),
			percentile(lat, 0.50).Round(time.Microsecond),
			percentile(lat, 0.95).Round(time.Microsecond),
			percentile(lat, 0.99).Round(time.Microsecond))
	}
	qps := float64(len(samples)) / elapsed.Seconds()
	fmt.Printf("loadgen: total=%d errors=%d qps=%.1f p50ms=%.3f p95ms=%.3f p99ms=%.3f\n",
		len(samples), errors, qps,
		ms(percentile(all, 0.50)), ms(percentile(all, 0.95)), ms(percentile(all, 0.99)))
	if errors > 0 {
		return fmt.Errorf("%d/%d requests failed", errors, len(samples))
	}
	return nil
}

// percentile returns the p-quantile of lat (nearest-rank); lat is sorted in
// place.
func percentile(lat []time.Duration, p float64) time.Duration {
	if len(lat) == 0 {
		return 0
	}
	sort.Slice(lat, func(a, b int) bool { return lat[a] < lat[b] })
	i := int(p * float64(len(lat)-1))
	return lat[i]
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
