// Command hipainfo reports graph statistics and the hierarchical
// partitioning a graph would receive on a machine: per-node partition/edge
// assignment, per-thread groups, intra/inter-edge locality, compression
// ratio, and the NUMA page placement of the attribute arrays.
//
// Usage:
//
//	hipainfo -graph g.bin [-machine skylake] [-divisor 1]
//	         [-partition 256K] [-threads 0] [-json]
//	         [-mutations m.txt]
//
// -mutations replays a mutation-stream file (the "+/-/commit" format of
// graph.ReadMutationBatches) against a versioned copy of the graph and adds
// the versioned-graph bookkeeping — version reached, overlay log size,
// compactions — to the report; the partitioning sections then describe the
// final version.
// -json emits the whole report as a single JSON object instead of text.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"hipa/internal/gen"
	"hipa/internal/graph"
	"hipa/internal/layout"
	"hipa/internal/machine"
	"hipa/internal/memsim"
	"hipa/internal/partition"
)

// infoReport is the machine-readable form of everything hipainfo prints;
// -json emits it verbatim.
type infoReport struct {
	Graph        graph.Stats            `json:"graph"`
	SkewTop10    float64                `json:"skew_top10_edge_share"`
	Machine      string                 `json:"machine"`
	Partitions   partitionsInfo         `json:"partitions"`
	Nodes        []nodeInfo             `json:"nodes"`
	Locality     partition.EdgeLocality `json:"locality"`
	Compression  compressionInfo        `json:"compression"`
	RankPages    []int64                `json:"rank_pages_per_node"`
	RankBytes    int64                  `json:"rank_bytes"`
	Versioned    *graph.VersionedStats  `json:"versioned,omitempty"`
	MutationFile string                 `json:"mutation_file,omitempty"`
}

type partitionsInfo struct {
	Count           int     `json:"count"`
	Bytes           int     `json:"bytes"`
	VerticesEach    int     `json:"vertices_each"`
	NodeEdgeBalance float64 `json:"node_edge_balance"`
	GroupBalance    float64 `json:"group_edge_balance"`
}

type nodeInfo struct {
	Node       int   `json:"node"`
	PartStart  int   `json:"part_start"`
	PartEnd    int   `json:"part_end"`
	VertexLow  int   `json:"vertex_low"`
	VertexHigh int   `json:"vertex_high"`
	EdgeCount  int64 `json:"edge_count"`
}

type compressionInfo struct {
	InterEdges      int64   `json:"inter_edges"`
	Messages        int64   `json:"messages"`
	EdgesPerMessage float64 `json:"edges_per_message"`
	Blocks          int     `json:"blocks"`
	BinBytes        int64   `json:"bin_bytes"`
}

func main() {
	var (
		graphPath = flag.String("graph", "", "binary HGR1 graph file (or use -dataset)")
		dataset   = flag.String("dataset", "", "generate a catalog analog instead of loading")
		divisor   = flag.Int("divisor", gen.DefaultDivisor, "scale divisor")
		preset    = flag.String("machine", "skylake", "machine preset")
		partSize  = flag.String("partition", "", "partition size (default 256K scaled)")
		threads   = flag.Int("threads", 0, "threads (0 = all logical cores)")
		mutPath   = flag.String("mutations", "", "replay a mutation-stream file against a versioned copy and report the final version")
		jsonOut   = flag.Bool("json", false, "emit the report as JSON instead of text")
	)
	flag.Parse()

	var g *graph.Graph
	var err error
	switch {
	case *graphPath != "":
		g, err = graph.LoadBinary(*graphPath)
	case *dataset != "":
		g, err = gen.GenerateByName(*dataset, *divisor)
	default:
		fail("need -graph or -dataset")
	}
	if err != nil {
		fail(err.Error())
	}

	mk, ok := machine.Presets[*preset]
	if !ok {
		fail("unknown machine preset " + *preset)
	}
	m := mk()
	if *dataset != "" {
		m = machine.Scaled(m, *divisor)
	}
	pb := 256 << 10
	if *dataset != "" {
		pb /= *divisor
		if pb < 16 {
			pb = 16
		}
	}
	if *partSize != "" {
		if pb, err = parseSize(*partSize); err != nil {
			fail(err.Error())
		}
	}
	th := *threads
	if th == 0 {
		th = m.LogicalCores()
	}

	rep := infoReport{Machine: m.String()}

	// Mutation replay first: the partitioning sections below then describe
	// the graph's final version, which is what an incremental re-rank would
	// partition.
	if *mutPath != "" {
		f, err := os.Open(*mutPath)
		if err != nil {
			fail(err.Error())
		}
		batches, err := graph.ReadMutationBatches(f)
		f.Close()
		if err != nil {
			fail(err.Error())
		}
		vg := graph.NewVersioned(g)
		for i, b := range batches {
			if _, err := vg.ApplyBatch(b); err != nil {
				fail(fmt.Sprintf("%s: batch %d: %v", *mutPath, i+1, err))
			}
		}
		vs := vg.Stats()
		rep.Versioned = &vs
		rep.MutationFile = *mutPath
		if g, err = vg.GraphAt(vg.Version()); err != nil {
			fail(err.Error())
		}
	}

	rep.Graph = graph.ComputeStats(g)
	rep.SkewTop10 = gen.DegreeSkew(g, 0.10)

	h, err := partition.Build(g, partition.Config{
		PartitionBytes: pb,
		BytesPerVertex: 4,
		NumNodes:       m.NUMANodes,
		GroupsPerNode:  th / m.NUMANodes,
	})
	if err != nil {
		fail(err.Error())
	}
	rep.Partitions = partitionsInfo{
		Count:           h.NumPartitions(),
		Bytes:           pb,
		VerticesEach:    h.VerticesPerPartition,
		NodeEdgeBalance: h.EdgeBalance(),
		GroupBalance:    h.GroupEdgeBalance(),
	}
	for _, na := range h.Nodes {
		rep.Nodes = append(rep.Nodes, nodeInfo{
			Node: na.Node, PartStart: na.PartStart, PartEnd: na.PartEnd,
			VertexLow: int(na.VertexLow), VertexHigh: int(na.VertexHigh), EdgeCount: na.EdgeCount,
		})
	}

	rep.Locality = partition.ComputeEdgeLocality(g, h)

	lay, err := layout.Build(g, h, true)
	if err != nil {
		fail(err.Error())
	}
	ratio := 1.0
	if lay.NumMessages() > 0 {
		ratio = float64(lay.InterEdges) / float64(lay.NumMessages())
	}
	rep.Compression = compressionInfo{
		InterEdges:      lay.InterEdges,
		Messages:        lay.NumMessages(),
		EdgesPerMessage: ratio,
		Blocks:          len(lay.Blocks),
		BinBytes:        lay.BinBytes(),
	}

	// NUMA placement of the rank array under HiPa's sliced policy.
	space := memsim.NewSpace(m)
	ranks := space.MustAlloc("ranks", int64(g.NumVertices())*4, memsim.Sliced{Bounds: h.RankBoundsBytes(4)})
	rep.RankPages = ranks.PagesOnNode(m.NUMANodes)
	rep.RankBytes = ranks.Size

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fail(err.Error())
		}
		return
	}

	fmt.Printf("graph      : %d vertices, %d edges, avg out-degree %.2f, max %d, %d dangling\n",
		rep.Graph.NumVertices, rep.Graph.NumEdges, rep.Graph.AvgOutDegree, rep.Graph.MaxOutDegree, rep.Graph.Dangling)
	fmt.Printf("skew       : top 10%% of vertices own %.1f%% of out-edges\n", 100*rep.SkewTop10)
	fmt.Printf("machine    : %s\n", m)
	if vs := rep.Versioned; vs != nil {
		fmt.Printf("versioned  : v%d after %d batches (%d mutations); %d -> %d edges; snapshot v%d, %d compactions\n",
			vs.Version, vs.LogBatches, vs.LogMutations, vs.SnapshotEdges, vs.Edges, vs.SnapshotVersion, vs.Compactions)
	}
	fmt.Printf("partitions : %d of %dB (%d vertices each); node edge balance %.3f, group balance %.3f\n",
		rep.Partitions.Count, pb, rep.Partitions.VerticesEach, rep.Partitions.NodeEdgeBalance, rep.Partitions.GroupBalance)
	for _, na := range rep.Nodes {
		fmt.Printf("  node %d   : partitions [%d,%d) vertices [%d,%d) edges %d\n",
			na.Node, na.PartStart, na.PartEnd, na.VertexLow, na.VertexHigh, na.EdgeCount)
	}
	fmt.Printf("locality   : %d intra / %d inter edges (%.0f / %.0f per partition)\n",
		rep.Locality.IntraEdges, rep.Locality.InterEdges, rep.Locality.IntraPerPartition, rep.Locality.InterPerPartition)
	fmt.Printf("compression: %d inter-edges -> %d messages (%.2f edges/message, %d blocks, bin %dB)\n",
		rep.Compression.InterEdges, rep.Compression.Messages, rep.Compression.EdgesPerMessage,
		rep.Compression.Blocks, rep.Compression.BinBytes)
	fmt.Printf("placement  : rank array %dB across %v pages per node (sliced by partition ownership)\n",
		rep.RankBytes, rep.RankPages)
}

func parseSize(s string) (int, error) {
	s = strings.ToUpper(strings.TrimSpace(s))
	mult := 1
	switch {
	case strings.HasSuffix(s, "K"):
		mult, s = 1<<10, strings.TrimSuffix(s, "K")
	case strings.HasSuffix(s, "M"):
		mult, s = 1<<20, strings.TrimSuffix(s, "M")
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return n * mult, nil
}

func fail(msg string) {
	fmt.Fprintln(os.Stderr, "hipainfo:", msg)
	os.Exit(1)
}
