// Command hipainfo reports graph statistics and the hierarchical
// partitioning a graph would receive on a machine: per-node partition/edge
// assignment, per-thread groups, intra/inter-edge locality, compression
// ratio, and the NUMA page placement of the attribute arrays.
//
// Usage:
//
//	hipainfo -graph g.bin [-machine skylake] [-divisor 1]
//	         [-partition 256K] [-threads 0]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"hipa/internal/gen"
	"hipa/internal/graph"
	"hipa/internal/layout"
	"hipa/internal/machine"
	"hipa/internal/memsim"
	"hipa/internal/partition"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "binary HGR1 graph file (or use -dataset)")
		dataset   = flag.String("dataset", "", "generate a catalog analog instead of loading")
		divisor   = flag.Int("divisor", gen.DefaultDivisor, "scale divisor")
		preset    = flag.String("machine", "skylake", "machine preset")
		partSize  = flag.String("partition", "", "partition size (default 256K scaled)")
		threads   = flag.Int("threads", 0, "threads (0 = all logical cores)")
	)
	flag.Parse()

	var g *graph.Graph
	var err error
	switch {
	case *graphPath != "":
		g, err = graph.LoadBinary(*graphPath)
	case *dataset != "":
		g, err = gen.GenerateByName(*dataset, *divisor)
	default:
		fail("need -graph or -dataset")
	}
	if err != nil {
		fail(err.Error())
	}

	mk, ok := machine.Presets[*preset]
	if !ok {
		fail("unknown machine preset " + *preset)
	}
	m := mk()
	if *dataset != "" {
		m = machine.Scaled(m, *divisor)
	}
	pb := 256 << 10
	if *dataset != "" {
		pb /= *divisor
		if pb < 16 {
			pb = 16
		}
	}
	if *partSize != "" {
		if pb, err = parseSize(*partSize); err != nil {
			fail(err.Error())
		}
	}
	th := *threads
	if th == 0 {
		th = m.LogicalCores()
	}

	stats := graph.ComputeStats(g)
	fmt.Printf("graph      : %d vertices, %d edges, avg out-degree %.2f, max %d, %d dangling\n",
		stats.NumVertices, stats.NumEdges, stats.AvgOutDegree, stats.MaxOutDegree, stats.Dangling)
	fmt.Printf("skew       : top 10%% of vertices own %.1f%% of out-edges\n", 100*gen.DegreeSkew(g, 0.10))
	fmt.Printf("machine    : %s\n", m)

	h, err := partition.Build(g, partition.Config{
		PartitionBytes: pb,
		BytesPerVertex: 4,
		NumNodes:       m.NUMANodes,
		GroupsPerNode:  th / m.NUMANodes,
	})
	if err != nil {
		fail(err.Error())
	}
	fmt.Printf("partitions : %d of %dB (%d vertices each); node edge balance %.3f, group balance %.3f\n",
		h.NumPartitions(), pb, h.VerticesPerPartition, h.EdgeBalance(), h.GroupEdgeBalance())
	for _, na := range h.Nodes {
		fmt.Printf("  node %d   : partitions [%d,%d) vertices [%d,%d) edges %d\n",
			na.Node, na.PartStart, na.PartEnd, na.VertexLow, na.VertexHigh, na.EdgeCount)
	}

	loc := partition.ComputeEdgeLocality(g, h)
	fmt.Printf("locality   : %d intra / %d inter edges (%.0f / %.0f per partition)\n",
		loc.IntraEdges, loc.InterEdges, loc.IntraPerPartition, loc.InterPerPartition)

	lay, err := layout.Build(g, h, true)
	if err != nil {
		fail(err.Error())
	}
	ratio := 1.0
	if lay.NumMessages() > 0 {
		ratio = float64(lay.InterEdges) / float64(lay.NumMessages())
	}
	fmt.Printf("compression: %d inter-edges -> %d messages (%.2f edges/message, %d blocks, bin %dB)\n",
		lay.InterEdges, lay.NumMessages(), ratio, len(lay.Blocks), lay.BinBytes())

	// NUMA placement of the rank array under HiPa's sliced policy.
	space := memsim.NewSpace(m)
	ranks := space.MustAlloc("ranks", int64(g.NumVertices())*4, memsim.Sliced{Bounds: h.RankBoundsBytes(4)})
	pages := ranks.PagesOnNode(m.NUMANodes)
	fmt.Printf("placement  : rank array %dB across %v pages per node (sliced by partition ownership)\n",
		ranks.Size, pages)
}

func parseSize(s string) (int, error) {
	s = strings.ToUpper(strings.TrimSpace(s))
	mult := 1
	switch {
	case strings.HasSuffix(s, "K"):
		mult, s = 1<<10, strings.TrimSuffix(s, "K")
	case strings.HasSuffix(s, "M"):
		mult, s = 1<<20, strings.TrimSuffix(s, "M")
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return n * mult, nil
}

func fail(msg string) {
	fmt.Fprintln(os.Stderr, "hipainfo:", msg)
	os.Exit(1)
}
