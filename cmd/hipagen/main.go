// Command hipagen generates graphs and writes them in the binary HGR1
// format (or as a text edge list).
//
// Usage:
//
//	hipagen -out g.bin -dataset journal -divisor 256        # catalog analog
//	hipagen -out g.bin -rmat 20 -edgefactor 16 -seed 7      # Graph500 R-MAT
//	hipagen -out g.bin -vertices 100000 -edges 1500000 \
//	        -outalpha 2.1 -inalpha 0.9                      # power law
//	hipagen -out g.txt -format edgelist -vertices 1000 -edges 5000
package main

import (
	"flag"
	"fmt"
	"os"

	"hipa/internal/gen"
	"hipa/internal/graph"
)

func main() {
	var (
		out        = flag.String("out", "", "output file (required)")
		format     = flag.String("format", "binary", "output format: binary or edgelist")
		dataset    = flag.String("dataset", "", "catalog dataset name (journal, pld, wiki, kron, twitter, mpi)")
		divisor    = flag.Int("divisor", gen.DefaultDivisor, "catalog scale divisor")
		rmat       = flag.Int("rmat", 0, "R-MAT scale (2^scale vertices)")
		edgeFactor = flag.Int("edgefactor", 16, "R-MAT edges per vertex")
		vertices   = flag.Int("vertices", 0, "power-law/uniform vertex count")
		edges      = flag.Int64("edges", 0, "power-law/uniform edge count")
		outAlpha   = flag.Float64("outalpha", 2.1, "power-law out-degree exponent (>1)")
		inAlpha    = flag.Float64("inalpha", 0.9, "power-law in-popularity exponent (>=0, 0 = uniform destinations)")
		uniform    = flag.Bool("uniform", false, "generate a uniform random graph instead of power law")
		seed       = flag.Uint64("seed", 42, "generator seed")
		withIn     = flag.Bool("with-in", false, "also store the in-edge (CSC) form")
	)
	flag.Parse()
	if *out == "" {
		fail("missing -out")
	}

	var g *graph.Graph
	var err error
	switch {
	case *dataset != "":
		g, err = gen.GenerateByName(*dataset, *divisor)
	case *rmat > 0:
		cfg := gen.DefaultRMAT(*rmat, *seed)
		cfg.EdgeFactor = *edgeFactor
		g, err = gen.RMAT(cfg)
	case *uniform:
		g, err = gen.Uniform(*vertices, *edges, *seed)
	case *vertices > 0:
		g, err = gen.PowerLaw(gen.PowerLawConfig{
			Vertices: *vertices, Edges: *edges,
			OutAlpha: *outAlpha, InAlpha: *inAlpha,
			Seed: *seed, HotShuffle: true,
		})
	default:
		fail("choose one of -dataset, -rmat, -vertices (+ optionally -uniform)")
	}
	if err != nil {
		fail(err.Error())
	}
	if *withIn {
		g.BuildIn()
	}

	switch *format {
	case "binary":
		err = graph.SaveBinary(*out, g)
	case "edgelist":
		var f *os.File
		if f, err = os.Create(*out); err == nil {
			err = graph.WriteEdgeList(f, g)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
	default:
		fail("unknown -format " + *format)
	}
	if err != nil {
		fail(err.Error())
	}
	fmt.Printf("wrote %s: %d vertices, %d edges\n", *out, g.NumVertices(), g.NumEdges())
}

func fail(msg string) {
	fmt.Fprintln(os.Stderr, "hipagen:", msg)
	os.Exit(1)
}
