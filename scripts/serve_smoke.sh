#!/bin/sh
# Serving smoke test: start hipaserve on a catalog graph, drive it with
# loadgen's closed-loop zipfian traffic, reload the graph mid-load, and
# assert the serving contracts end to end:
#
#   - every query succeeds (loadgen exits nonzero on any failed request,
#     including the ones racing the mid-load reloads — a reload must never
#     drop an in-flight query);
#   - the per-endpoint latency histograms and serving counters are live on
#     /metrics (validated strictly with cmd/promcheck);
#   - identical concurrent recomputes coalesce onto one Exec (loadgen
#     -coalesce-probe, then the coalesced counter is value-asserted);
#   - the served version gauge reflects the reloads applied.
#
# The loadgen summary line (total/qps/p50/p95/p99) is printed for the
# serving table in EXPERIMENTS.md. Set SERVE_SMOKE_OUT to save the final
# /metrics scrape. Requires curl.
set -eu

GO=${GO:-go}
# kron/4096 serves ~16k vertices: large enough that a recompute Exec spans
# tens of milliseconds, giving the coalesce probe's synchronized requests a
# wide window to pile onto one flight even when the Exec's worker pool has
# every core busy.
DIVISOR=${SERVE_SMOKE_DIVISOR:-4096}
DATASET=${SERVE_SMOKE_DATASET:-kron}
DURATION=${SERVE_SMOKE_DURATION:-5s}
WORKERS=${SERVE_SMOKE_WORKERS:-8}
OUT=${SERVE_SMOKE_OUT:-}

if ! command -v curl >/dev/null 2>&1; then
    echo "serve_smoke: curl not installed; skipping" >&2
    exit 0
fi

WORK=$(mktemp -d)
SERVE_PID=""
cleanup() {
    [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

BIN="$WORK/bin"
$GO build -o "$BIN/" ./cmd/hipaserve ./cmd/loadgen ./cmd/promcheck

echo "== hipaserve on $DATASET/$DIVISOR =="
"$BIN/hipaserve" -dataset "$DATASET" -divisor "$DIVISOR" \
    -listen 127.0.0.1:0 >"$WORK/serve.log" 2>&1 &
SERVE_PID=$!

# Poll the log for the bound URL (printed once the listener is up).
i=0
URL=""
while [ $i -lt 100 ]; do
    URL=$(sed -n 's|^hipaserve: serving \(http://.*\)$|\1|p' "$WORK/serve.log" | head -1)
    [ -n "$URL" ] && break
    if ! kill -0 "$SERVE_PID" 2>/dev/null; then
        echo "serve_smoke: hipaserve exited during startup" >&2
        cat "$WORK/serve.log" >&2
        exit 1
    fi
    i=$((i + 1))
    sleep 0.1
done
[ -n "$URL" ] || { echo "serve_smoke: no serving URL after 10s" >&2; cat "$WORK/serve.log" >&2; exit 1; }

HEALTH=$(curl -fsS "$URL/healthz")
[ "$HEALTH" = "ok" ] || { echo "serve_smoke: /healthz said '$HEALTH'" >&2; exit 1; }

echo "== closed-loop load ($DURATION, $WORKERS workers) with mid-load reloads =="
"$BIN/loadgen" -url "$URL" -duration "$DURATION" -workers "$WORKERS" \
    >"$WORK/loadgen.log" 2>&1 &
LOAD_PID=$!

# Two reloads while the load is running: each applies a mutation batch,
# patches the artifact, warm re-ranks, and swaps the snapshot. curl -f makes
# a non-200 reload fail the smoke; loadgen's exit status catches any query
# the swap might have dropped.
sleep 1
for r in 1 2; do
    printf '+ 1 2\n+ 3 4\n+ 5 6\n- 1 2\ncommit\n' | curl -fsS -X POST --data-binary @- \
        "$URL/v1/admin/reload" >"$WORK/reload$r.json" || {
        echo "serve_smoke: reload $r failed" >&2
        cat "$WORK/reload$r.json" "$WORK/serve.log" >&2
        exit 1
    }
    grep -q '"to_version": '"$r" "$WORK/reload$r.json" || {
        echo "serve_smoke: reload $r did not reach version $r" >&2
        cat "$WORK/reload$r.json" >&2
        exit 1
    }
    sleep 1
done

if ! wait "$LOAD_PID"; then
    echo "serve_smoke: queries failed during the load (a reload dropped in-flight traffic?)" >&2
    cat "$WORK/loadgen.log" >&2
    exit 1
fi
grep 'loadgen: total=' "$WORK/loadgen.log"
grep -q 'errors=0' "$WORK/loadgen.log" || {
    echo "serve_smoke: loadgen reported errors" >&2
    cat "$WORK/loadgen.log" >&2
    exit 1
}

echo "== coalesce probe =="
# The probe releases 16 identical recomputes at once; whether a given
# request joins the in-flight Exec or starts the next one depends on
# goroutine scheduling under a fully busy worker pool, so allow a few
# rounds before declaring coalescing dead.
attempt=1
while :; do
    "$BIN/loadgen" -url "$URL" -coalesce-probe 16 >"$WORK/probe.log" 2>&1 || {
        echo "serve_smoke: coalesce probe failed" >&2
        cat "$WORK/probe.log" >&2
        exit 1
    }
    COALESCED=$(curl -fsS "$URL/metrics" | awk '/^hipa_serve_exec_coalesced_total/ { s += $2 } END { print s+0 }')
    [ "$COALESCED" -gt 0 ] && break
    if [ $attempt -ge 5 ]; then
        echo "serve_smoke: no recompute coalesced after $attempt probes of 16" >&2
        cat "$WORK/probe.log" >&2
        exit 1
    fi
    attempt=$((attempt + 1))
done
grep 'loadgen: total=' "$WORK/probe.log"
echo "coalesced recomputes after probe: $COALESCED"

echo "== metrics validation =="
curl -fsS "$URL/metrics" -o "$WORK/metrics.prom"
# Strict exposition check: per-endpoint latency histograms, request
# counters, and the serving families must all be present.
"$BIN/promcheck" -require \
    'hipa_http_request_seconds=endpoint:rank','hipa_http_request_seconds=endpoint:topk','hipa_http_request_seconds=endpoint:neighbors','hipa_http_request_seconds=endpoint:reload','hipa_http_requests_total=endpoint:rank','hipa_serve_execs_total','hipa_serve_exec_coalesced_total','hipa_serve_reloads_total','hipa_serve_graph_version','hipa_serve_exec_wait_seconds','hipa_prep_cache_misses_total' \
    <"$WORK/metrics.prom"

# Value assertions (promcheck checks presence, not values): the probe loop
# already proved the coalesced counter positive; here the version gauge
# must show both reloads.
awk -F' ' '/^hipa_serve_graph_version/ { if ($2+0 == 2) found=1 }
    END { exit found ? 0 : 1 }' "$WORK/metrics.prom" || {
    echo "serve_smoke: version gauge does not show both reloads" >&2
    grep '^hipa_serve_graph_version' "$WORK/metrics.prom" >&2
    exit 1
}

kill "$SERVE_PID" 2>/dev/null || true
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""

if [ -n "$OUT" ]; then
    cp "$WORK/metrics.prom" "$OUT"
    echo "saved metrics snapshot to $OUT"
fi
echo "serve smoke: ok (0 query errors across 2 mid-load reloads; recompute coalescing live)"
