#!/bin/sh
# Telemetry smoke test: start the real CLIs with -metrics-addr, scrape
# /metrics and /healthz over HTTP *while the run is in flight*, and validate
# the exposition with the strict parser (cmd/promcheck).
#
# Two stages:
#   1. hipapr -repeat against a generated graph — a long serving loop that is
#      scraped mid-run for the HiPa superstep/prep-stage/cache/arena series,
#      then killed (the smoke never waits for 3000 executions).
#   2. hipabench -exp table2 — one process running all five engines; the
#      scrape loop polls until every engine's superstep histogram is live on
#      /metrics, still mid-invocation thanks to -repeat.
#
# Set TELEMETRY_SMOKE_OUT to save the final all-engine scrape (CI uploads it
# as the metrics artifact). Requires curl.
set -eu

GO=${GO:-go}
DIVISOR=${TELEMETRY_SMOKE_DIVISOR:-16384}
OUT=${TELEMETRY_SMOKE_OUT:-}

if ! command -v curl >/dev/null 2>&1; then
    echo "telemetry_smoke: curl not installed; skipping" >&2
    exit 0
fi

WORK=$(mktemp -d)
PR_PID=""
BENCH_PID=""
cleanup() {
    [ -n "$PR_PID" ] && kill "$PR_PID" 2>/dev/null || true
    [ -n "$BENCH_PID" ] && kill "$BENCH_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

BIN="$WORK/bin"
$GO build -o "$BIN/" ./cmd/hipagen ./cmd/hipapr ./cmd/hipabench ./cmd/promcheck

# wait_url LOGFILE SED_PATTERN: poll the log until the CLI prints its bound
# telemetry URL (the listener is bound before any heavy work, so this is
# quick), echo the base URL.
wait_url() {
    _log=$1; _pat=$2; _i=0
    while [ $_i -lt 100 ]; do
        _url=$(sed -n "$_pat" "$_log" 2>/dev/null | head -1)
        if [ -n "$_url" ]; then
            echo "$_url"
            return 0
        fi
        _i=$((_i + 1))
        sleep 0.1
    done
    echo "telemetry_smoke: no telemetry URL in $_log after 10s" >&2
    cat "$_log" >&2
    return 1
}

echo "== stage 1: hipapr -repeat, scraped mid-run =="
# A 4x larger graph than the bench stage and a deep repeat loop give the
# scraper a multi-second window; the process is killed as soon as the scrape
# passes, so the happy path stays fast.
"$BIN/hipagen" -out "$WORK/g.bin" -dataset journal -divisor 4096
"$BIN/hipapr" -graph "$WORK/g.bin" -repeat 200000 -iters 4 -top 0 \
    -metrics-addr 127.0.0.1:0 >"$WORK/hipapr.log" 2>&1 &
PR_PID=$!
URL=$(wait_url "$WORK/hipapr.log" 's|^telemetry  : serving \(http://[^/]*\)/metrics.*|\1|p')

HEALTH=$(curl -fsS "$URL/healthz")
[ "$HEALTH" = "ok" ] || { echo "telemetry_smoke: /healthz said '$HEALTH'" >&2; exit 1; }

# Poll until the first execution has landed its series (tiny graph — fast),
# then validate the full exposition plus the required families strictly.
i=0
while :; do
    if curl -fsS "$URL/metrics" 2>/dev/null | "$BIN/promcheck" \
        -require 'hipa_superstep_seconds=engine:HiPa','hipa_phase_seconds=phase:scatter','hipa_residual','hipa_iterations_total','hipa_prep_stage_seconds=stage:partition','hipa_prep_cache_misses_total','hipa_execbuf_arenas_created_total','hipa_execbuf_arenas_outstanding' \
        >/dev/null 2>"$WORK/promcheck.err"; then
        break
    fi
    if ! kill -0 "$PR_PID" 2>/dev/null; then
        echo "telemetry_smoke: hipapr exited before the scrape succeeded" >&2
        cat "$WORK/hipapr.log" "$WORK/promcheck.err" >&2
        exit 1
    fi
    i=$((i + 1))
    if [ $i -gt 300 ]; then
        echo "telemetry_smoke: hipapr series not live after 60s" >&2
        cat "$WORK/promcheck.err" >&2
        exit 1
    fi
    sleep 0.2
done
curl -fsS "$URL/runs" | grep '"runs"' >/dev/null || { echo "telemetry_smoke: /runs malformed" >&2; exit 1; }
kill "$PR_PID" 2>/dev/null || true
wait "$PR_PID" 2>/dev/null || true
PR_PID=""
echo "hipapr mid-run scrape: ok"

echo "== stage 2: hipabench table2, all five engines =="
"$BIN/hipabench" -exp table2 -divisor "$DIVISOR" -iters 2 -repeat 5 \
    -metrics-addr 127.0.0.1:0 >/dev/null 2>"$WORK/hipabench.log" &
BENCH_PID=$!
URL=$(wait_url "$WORK/hipabench.log" 's|^hipabench: telemetry: serving \(http://[^/]*\)/metrics.*|\1|p')

REQUIRE='hipa_superstep_seconds=engine:HiPa'
REQUIRE="$REQUIRE,hipa_superstep_seconds=engine:p-PR"
REQUIRE="$REQUIRE,hipa_superstep_seconds=engine:GPOP"
REQUIRE="$REQUIRE,hipa_superstep_seconds=engine:v-PR"
REQUIRE="$REQUIRE,hipa_superstep_seconds=engine:Polymer"
REQUIRE="$REQUIRE,hipa_prep_stage_seconds,hipa_prep_cache_hits_total,hipa_execbuf_arenas_reused_total"
i=0
while :; do
    if curl -fsS "$URL/metrics" -o "$WORK/metrics.prom" 2>/dev/null \
        && "$BIN/promcheck" -require "$REQUIRE" <"$WORK/metrics.prom" >"$WORK/promcheck.out" 2>"$WORK/promcheck.err"; then
        break
    fi
    if ! kill -0 "$BENCH_PID" 2>/dev/null; then
        echo "telemetry_smoke: hipabench exited before all five engines were scrapeable" >&2
        cat "$WORK/hipabench.log" "$WORK/promcheck.err" >&2
        exit 1
    fi
    i=$((i + 1))
    if [ $i -gt 600 ]; then
        echo "telemetry_smoke: five-engine series not live after 120s" >&2
        cat "$WORK/promcheck.err" >&2
        exit 1
    fi
    sleep 0.2
done
cat "$WORK/promcheck.out"
kill "$BENCH_PID" 2>/dev/null || true
wait "$BENCH_PID" 2>/dev/null || true
BENCH_PID=""

if [ -n "$OUT" ]; then
    cp "$WORK/metrics.prom" "$OUT"
    echo "saved metrics snapshot to $OUT"
fi
echo "telemetry smoke: ok (all five engines live on /metrics mid-run)"
