#!/bin/sh
# Batched-PPR smoke test, in two acts:
#
#   1. hipabench -exp batch -batch-check: the modelled bytes-moved-per-query
#      sweep over B in {1,4,16,64} through the real CLI, with the headline
#      amortization claim enforced (exit 1 unless B=16 moves at least 4x
#      fewer bytes per query than B=1).
#
#   2. hipaserve + loadgen -ppr-burst: a barrier-synchronized burst of
#      personalized-PageRank queries against /v1/ppr, asserting the request
#      queue actually coalesces them (max observed batch width > 1, both
#      from the client's view and from the hipa_serve_ppr_batch_size
#      histogram on /metrics), with the ppr metric families validated
#      strictly by cmd/promcheck.
#
# Set BATCH_SMOKE_OUT to save the final /metrics scrape. Requires curl.
set -eu

GO=${GO:-go}
DIVISOR=${BATCH_SMOKE_DIVISOR:-1024}
# wiki/8192 preps in well under a second, and a 32-query burst against a
# 2ms flush window forms multi-query batches with a wide margin.
SERVE_DIVISOR=${BATCH_SMOKE_SERVE_DIVISOR:-8192}
SERVE_DATASET=${BATCH_SMOKE_SERVE_DATASET:-wiki}
BURST=${BATCH_SMOKE_BURST:-32}
OUT=${BATCH_SMOKE_OUT:-}

echo "== modelled bytes/query sweep (divisor $DIVISOR) =="
$GO run ./cmd/hipabench -exp batch -batch-check -divisor "$DIVISOR"

if ! command -v curl >/dev/null 2>&1; then
    echo "batch_smoke: curl not installed; skipping the serve burst" >&2
    exit 0
fi

WORK=$(mktemp -d)
SERVE_PID=""
cleanup() {
    [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

BIN="$WORK/bin"
$GO build -o "$BIN/" ./cmd/hipaserve ./cmd/loadgen ./cmd/promcheck

echo "== hipaserve on $SERVE_DATASET/$SERVE_DIVISOR =="
"$BIN/hipaserve" -dataset "$SERVE_DATASET" -divisor "$SERVE_DIVISOR" \
    -listen 127.0.0.1:0 >"$WORK/serve.log" 2>&1 &
SERVE_PID=$!

i=0
URL=""
while [ $i -lt 100 ]; do
    URL=$(sed -n 's|^hipaserve: serving \(http://.*\)$|\1|p' "$WORK/serve.log" | head -1)
    [ -n "$URL" ] && break
    if ! kill -0 "$SERVE_PID" 2>/dev/null; then
        echo "batch_smoke: hipaserve exited during startup" >&2
        cat "$WORK/serve.log" >&2
        exit 1
    fi
    i=$((i + 1))
    sleep 0.1
done
[ -n "$URL" ] || { echo "batch_smoke: no serving URL after 10s" >&2; cat "$WORK/serve.log" >&2; exit 1; }

echo "== ppr burst ($BURST synchronized queries) =="
# Whether a given burst lands in one flush window depends on goroutine
# scheduling, so allow a few rounds before declaring batching dead.
attempt=1
while :; do
    "$BIN/loadgen" -url "$URL" -ppr-burst "$BURST" >"$WORK/burst.log" 2>&1 || {
        echo "batch_smoke: ppr burst failed" >&2
        cat "$WORK/burst.log" "$WORK/serve.log" >&2
        exit 1
    }
    MAXB=$(sed -n 's/.*max_batch=\([0-9]*\).*/\1/p' "$WORK/burst.log" | head -1)
    [ -n "$MAXB" ] && [ "$MAXB" -gt 1 ] && break
    if [ $attempt -ge 5 ]; then
        echo "batch_smoke: no multi-query batch formed after $attempt bursts of $BURST" >&2
        cat "$WORK/burst.log" >&2
        exit 1
    fi
    attempt=$((attempt + 1))
done
grep 'loadgen: ppr_queries=' "$WORK/burst.log"

echo "== metrics validation =="
curl -fsS "$URL/metrics" -o "$WORK/metrics.prom"
"$BIN/promcheck" -require \
    'hipa_serve_ppr_queries_total','hipa_serve_ppr_batches_total','hipa_serve_ppr_execs_total','hipa_serve_ppr_queue_depth','hipa_serve_ppr_batch_size','hipa_serve_ppr_flush_seconds' \
    <"$WORK/metrics.prom"

# Server-side view of the same claim: the batch-size histogram's mean must
# exceed 1 query per flushed batch (promcheck checks presence, not values).
awk '/^hipa_serve_ppr_batch_size_sum/ { s = $2 }
    /^hipa_serve_ppr_batch_size_count/ { c = $2 }
    END { if (c + 0 > 0 && s / c > 1) exit 0; exit 1 }' "$WORK/metrics.prom" || {
    echo "batch_smoke: batch-size histogram mean is not > 1 query/batch" >&2
    grep '^hipa_serve_ppr_batch_size' "$WORK/metrics.prom" >&2
    exit 1
}

kill "$SERVE_PID" 2>/dev/null || true
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""

if [ -n "$OUT" ]; then
    cp "$WORK/metrics.prom" "$OUT"
    echo "saved metrics snapshot to $OUT"
fi
echo "batch smoke: ok (bytes/query gate passed; burst coalesced into multi-query batches)"
