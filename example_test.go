package hipa_test

import (
	"fmt"

	"hipa"
)

// ExampleHiPa demonstrates the minimal end-to-end flow: generate a dataset
// analog, run HiPa PageRank with the paper's defaults, inspect the result.
func Example() {
	g, err := hipa.Generate("journal", 4096)
	if err != nil {
		panic(err)
	}
	res, err := hipa.HiPa.Run(g, hipa.Options{
		Machine:        hipa.ScaledMachine(hipa.Skylake(), 4096),
		Iterations:     10,
		PartitionBytes: 64,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("engine=%s threads=%d rank-sum=%.3f migrations<=threads=%v\n",
		res.Engine, res.Threads, hipa.RankSum(res.Ranks), res.Sched.Migrations <= int64(res.Threads))
	// Output: engine=HiPa threads=40 rank-sum=1.000 migrations<=threads=true
}

// ExamplePrepare shows the prepare-once / execute-many serving pattern: one
// preprocessing artifact, shared through a PrepCache and executed twice,
// with both executions producing bit-identical ranks.
func ExamplePrepare() {
	g, err := hipa.Generate("journal", 4096)
	if err != nil {
		panic(err)
	}
	o := hipa.Options{
		Machine:        hipa.ScaledMachine(hipa.Skylake(), 4096),
		Iterations:     10,
		PartitionBytes: 64,
		PrepCache:      hipa.NewPrepCache(8),
	}
	prep, err := hipa.Prepare(hipa.HiPa, g, o)
	if err != nil {
		panic(err)
	}
	r1, err := hipa.Exec(hipa.HiPa, prep, o)
	if err != nil {
		panic(err)
	}
	r2, err := hipa.Exec(hipa.HiPa, prep, o)
	if err != nil {
		panic(err)
	}
	same := len(r1.Ranks) == len(r2.Ranks)
	for i := range r1.Ranks {
		same = same && r1.Ranks[i] == r2.Ranks[i]
	}
	// A second Prepare on the same graph and options is a cache hit.
	prep2, err := hipa.Prepare(hipa.HiPa, g, o)
	if err != nil {
		panic(err)
	}
	fmt.Printf("identical-ranks=%v cached=%v prep-paid-once=%v\n",
		same, prep2.FromCache, r1.PrepFromCache == false)
	// Output: identical-ranks=true cached=true prep-paid-once=true
}

// ExampleTopK ranks a tiny star graph: the hub collects the rank mass.
func ExampleTopK() {
	b := hipa.NewGraphBuilder(4)
	b.AddEdge(1, 0)
	b.AddEdge(2, 0)
	b.AddEdge(3, 0)
	g := b.Build()
	ranks := hipa.ReferencePageRank(g, 50, 0.85)
	r32 := make([]float32, len(ranks))
	for i, r := range ranks {
		r32[i] = float32(r)
	}
	fmt.Println(hipa.TopK(r32, 1))
	// Output: [0]
}

// ExampleWCC labels the weak components of a graph with two islands.
func ExampleWCC() {
	b := hipa.NewGraphBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(4, 5)
	g := b.Build()
	res, err := hipa.WCC(g, hipa.FrameworkConfig{Threads: 2})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Values)
	// Output: [0 0 0 3 4 4]
}

// ExampleBFS walks a path graph.
func ExampleBFS() {
	b := hipa.NewGraphBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	g := b.Build()
	res, err := hipa.BFS(g, 0, hipa.AlgoConfig{Threads: 2})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Levels)
	// Output: [0 1 2 3]
}
