GO ?= go

.PHONY: all build test vet race ci bench smoke clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-enabled test run; the simulated scheduler and the telemetry recorder
# are exercised concurrently by every engine test, so this is the main
# concurrency gate.
race:
	$(GO) test -race ./...

ci: vet build race smoke

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# End-to-end smoke: a tiny fig6 sweep through the real CLI (exercising the
# shared prep cache across the thread sweep) plus a compile-and-run pass of
# the benchmarks at one iteration each.
smoke:
	$(GO) run ./cmd/hipabench -exp fig6 -divisor 16384 -iters 2 > /dev/null
	$(GO) test -run '^$$' -bench . -benchtime 1x . > /dev/null

clean:
	$(GO) clean ./...
