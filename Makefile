GO ?= go

# BENCH_pagerank.json was generated with these settings; the gate refuses to
# compare measurements taken at a different shape.
BENCH_BASELINE ?= BENCH_pagerank.json
BENCH_DIVISOR  ?= 1024
BENCH_DATASET  ?= journal

.PHONY: all build test vet staticcheck race race-prep bench-prep ci bench bench-gate bench-baseline smoke dynamic-smoke telemetry-smoke serve-smoke batch-smoke clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# staticcheck runs when the binary is installed (CI installs it; locally:
# go install honnef.co/go/tools/cmd/staticcheck@latest) and is skipped
# otherwise so `make ci` works in a bare toolchain-only environment.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping"; \
	fi

# Race-enabled test run; the simulated scheduler and the telemetry recorder
# are exercised concurrently by every engine test, so this is the main
# concurrency gate.
race:
	$(GO) test -race ./...

# The lazy-CSC / fingerprint hammer tests, explicitly under -race: these are
# the regression tests for the graph-layer publication races and must run
# with the detector even when the full race suite is trimmed.
race-prep:
	$(GO) test -race -run 'Concurrent|Race' ./internal/graph/ ./internal/engines/...

# One-iteration pass over the Prepare benchmarks so the parallel build paths
# (counting-sort CSR, CSC, fingerprint, partition+layout) are exercised in CI.
bench-prep:
	$(GO) test -run '^$$' -bench 'BenchmarkPrepare' -benchtime 1x ./internal/graph/ .

ci: vet staticcheck build race race-prep bench-prep bench smoke dynamic-smoke telemetry-smoke serve-smoke batch-smoke bench-gate

# One-iteration pass over the root benchmarks (compile-and-run validation of
# every benchmark body; not a timing run). `smoke` used to duplicate this —
# it is now the single place the root benchmarks run in CI.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x . > /dev/null

# End-to-end smoke: a tiny fig6 sweep through the real CLI, exercising the
# shared prep cache across the thread sweep.
smoke:
	$(GO) run ./cmd/hipabench -exp fig6 -divisor 16384 -iters 2 > /dev/null

# Dynamic-replay smoke: the incremental re-rank pipeline end to end through
# the real CLI — versioned graph, mutation stream, Advance-patched
# artifacts, warm execs — with the headline claim enforced (exit 1 unless
# the sparse warm path converges in at least 2x fewer iterations than cold).
dynamic-smoke:
	$(GO) run ./cmd/hipabench -exp dynamic -dynamic-check \
		-divisor $(BENCH_DIVISOR) > /dev/null

# Live-telemetry smoke: start the CLIs with -metrics-addr, curl /metrics and
# /healthz mid-run, and validate the Prometheus exposition (all five engines'
# superstep histograms plus prep-stage/cache/arena series) with promcheck.
# Set TELEMETRY_SMOKE_OUT=path to keep the final scrape (CI uploads it).
telemetry-smoke:
	sh scripts/telemetry_smoke.sh

# Serving smoke: hipaserve on a catalog graph under loadgen's closed-loop
# zipfian traffic with mid-load reloads — zero query errors, per-endpoint
# latency histograms live on /metrics (promcheck), recompute coalescing
# counter-asserted, served-version gauge tracking the reloads. Set
# SERVE_SMOKE_OUT=path to keep the final scrape (CI uploads it).
serve-smoke:
	sh scripts/serve_smoke.sh

# Batched-PPR smoke: the modelled bytes-moved-per-query sweep with its 4x
# amortization check (hipabench -exp batch -batch-check), then a
# barrier-synchronized loadgen burst against a live hipaserve /v1/ppr queue
# asserting multi-query batches actually form — from the client's batch
# widths, the hipa_serve_ppr_batch_size histogram, and promcheck over the
# ppr metric families. Set BATCH_SMOKE_OUT=path to keep the final scrape
# (CI uploads it).
batch-smoke:
	BATCH_SMOKE_DIVISOR=$(BENCH_DIVISOR) sh scripts/batch_smoke.sh

# Allocation gate: measure the Exec allocation profile of every registered
# engine plus the dynamic-replay warm-vs-cold convergence trajectory, and
# compare against the committed baseline (exact on the zero
# allocs/iteration steady state). Regenerate the baseline with
# `make bench-baseline` after an intentional change.
bench-gate:
	$(GO) run ./cmd/hipabench -baseline $(BENCH_BASELINE) \
		-divisor $(BENCH_DIVISOR) -datasets $(BENCH_DATASET)

bench-baseline:
	$(GO) run ./cmd/hipabench -baseline $(BENCH_BASELINE) -baseline-write \
		-divisor $(BENCH_DIVISOR) -datasets $(BENCH_DATASET)

clean:
	$(GO) clean ./...
