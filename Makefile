GO ?= go

.PHONY: all build test vet race ci bench clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-enabled test run; the simulated scheduler and the telemetry recorder
# are exercised concurrently by every engine test, so this is the main
# concurrency gate.
race:
	$(GO) test -race ./...

ci: vet build race

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

clean:
	$(GO) clean ./...
