GO ?= go

.PHONY: all build test vet race ci bench smoke clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-enabled test run; the simulated scheduler and the telemetry recorder
# are exercised concurrently by every engine test, so this is the main
# concurrency gate.
race:
	$(GO) test -race ./...

# The lazy-CSC / fingerprint hammer tests, explicitly under -race: these are
# the regression tests for the graph-layer publication races and must run
# with the detector even when the full race suite is trimmed.
race-prep:
	$(GO) test -race -run 'Concurrent|Race' ./internal/graph/ ./internal/engines/...

# One-iteration pass over the Prepare benchmarks so the parallel build paths
# (counting-sort CSR, CSC, fingerprint, partition+layout) are exercised in CI.
bench-prep:
	$(GO) test -run '^$$' -bench 'BenchmarkPrepare' -benchtime 1x ./internal/graph/ .

ci: vet build race race-prep bench-prep smoke

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# End-to-end smoke: a tiny fig6 sweep through the real CLI (exercising the
# shared prep cache across the thread sweep) plus a compile-and-run pass of
# the benchmarks at one iteration each.
smoke:
	$(GO) run ./cmd/hipabench -exp fig6 -divisor 16384 -iters 2 > /dev/null
	$(GO) test -run '^$$' -bench . -benchtime 1x . > /dev/null

clean:
	$(GO) clean ./...
