// Package hipa is a Go reproduction of "HiPa: Hierarchical Partitioning for
// Fast PageRank on NUMA Multicore Systems" (Chen & Chung, ICPP 2021).
//
// The package provides:
//
//   - graph construction, generation, and IO (Graph, NewGraphBuilder,
//     Generate, LoadGraph...);
//   - five PageRank engines — the paper's contribution HiPa plus its four
//     baselines (p-PR, v-PR, GPOP-like, Polymer-like) — all runnable through
//     the Engine interface;
//   - simulated NUMA machines (Skylake and Haswell presets) substituting
//     for the paper's testbeds, since Go has no NUMA placement or thread
//     pinning: engines execute in real parallel goroutines while a
//     deterministic machine model prices their memory behaviour;
//   - the full reproduction harness for every table and figure of the
//     paper's evaluation (Repro* functions);
//   - the future-work algorithms on the HiPa substrate (SpMV, PageRank-
//     Delta, BFS) in the algorithms subpackage.
//
// Quickstart:
//
//	g, _ := hipa.Generate("journal", 256)
//	res, _ := hipa.HiPa.Run(g, hipa.Options{})
//	fmt.Println(res.Model.EstimatedSeconds, res.Model.RemoteFraction)
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for
// paper-vs-measured results.
package hipa

import (
	"io"

	"hipa/internal/gen"
	"hipa/internal/graph"
	"hipa/internal/machine"
)

// Graph is an immutable directed graph in CSR form. See the methods on
// graph.Graph: NumVertices, NumEdges, OutNeighbors, BuildIn, ...
type Graph = graph.Graph

// Edge is a directed edge.
type Edge = graph.Edge

// VertexID identifies a vertex (dense 0..n-1).
type VertexID = graph.VertexID

// GraphBuilder accumulates edges and produces an immutable Graph.
type GraphBuilder = graph.Builder

// NewGraphBuilder returns a builder for a graph with n vertices.
func NewGraphBuilder(n int) *GraphBuilder { return graph.NewBuilder(n) }

// LoadGraph reads a graph from a binary (HGR1) file.
func LoadGraph(path string) (*Graph, error) { return graph.LoadBinary(path) }

// SaveGraph writes a graph to a binary (HGR1) file.
func SaveGraph(path string, g *Graph) error { return graph.SaveBinary(path, g) }

// ReadEdgeList parses a "src dst" text edge list.
func ReadEdgeList(r io.Reader, numVertices int) (*Graph, error) {
	return graph.ReadEdgeList(r, numVertices)
}

// Generate produces the synthetic analog of one of the paper's six
// evaluation datasets ("journal", "pld", "wiki", "kron", "twitter", "mpi"),
// scaled down by divisor (>= 1) with density and degree skew preserved.
func Generate(dataset string, divisor int) (*Graph, error) {
	return gen.GenerateByName(dataset, divisor)
}

// Datasets lists the catalog dataset names in the paper's order.
func Datasets() []string { return gen.Names() }

// RMAT generates a Graph500-style Kronecker graph with 2^scale vertices and
// edgeFactor edges per vertex.
func RMAT(scale, edgeFactor int, seed uint64) (*Graph, error) {
	cfg := gen.DefaultRMAT(scale, seed)
	cfg.EdgeFactor = edgeFactor
	return gen.RMAT(cfg)
}

// PowerLaw generates a directed power-law graph with the given vertex and
// edge counts; outAlpha (>1) controls out-degree skew, inAlpha (>=0) the
// destination popularity skew.
func PowerLaw(vertices int, edges int64, outAlpha, inAlpha float64, seed uint64) (*Graph, error) {
	return gen.PowerLaw(gen.PowerLawConfig{
		Vertices: vertices, Edges: edges,
		OutAlpha: outAlpha, InAlpha: inAlpha,
		Seed: seed, HotShuffle: true,
	})
}

// Uniform generates a uniform random multigraph with n vertices and m edges.
func Uniform(n int, m int64, seed uint64) (*Graph, error) { return gen.Uniform(n, m, seed) }

// Machine describes a simulated NUMA multicore system.
type Machine = machine.Machine

// Skylake returns the paper's primary testbed: 2x Xeon Silver 4210
// (2 NUMA nodes x 10 cores x 2 HT, 1MB L2, 13.75MB non-inclusive LLC).
func Skylake() *Machine { return machine.SkylakeSilver4210() }

// Haswell returns the paper's second testbed: 2x Xeon E5-2667
// (256KB L2, 20MB inclusive LLC).
func Haswell() *Machine { return machine.HaswellE52667() }

// ScaledMachine divides a machine's capacity parameters by div, preserving
// cache-to-working-set ratios for scaled-down datasets.
func ScaledMachine(m *Machine, div int) *Machine { return machine.Scaled(m, div) }

// SingleNodeMachine restricts a machine to one NUMA node (§4.5 experiment).
func SingleNodeMachine(m *Machine) *Machine { return machine.SingleNode(m) }
