// Quickstart: generate a scaled analog of the paper's LiveJournal dataset,
// run HiPa PageRank on the simulated 2-socket Skylake machine, and print the
// timing, memory behaviour, and top-ranked vertices.
package main

import (
	"fmt"
	"log"

	"hipa"
)

func main() {
	const divisor = 512 // 1/512 of paper scale; same cache-to-data ratios

	g, err := hipa.Generate("journal", divisor)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("journal analog: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())

	m := hipa.ScaledMachine(hipa.Skylake(), divisor)
	res, err := hipa.HiPa.Run(g, hipa.Options{
		Machine:        m,
		Iterations:     20,
		PartitionBytes: 256 << 10 / divisor, // the paper's 256KB optimum, scaled
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("HiPa, %d threads, %d iterations\n", res.Threads, res.Iterations)
	fmt.Printf("  real wall time : %.4fs (+ %.4fs partitioning)\n", res.WallSeconds, res.PrepSeconds)
	fmt.Printf("  modelled time  : %.4fs on %s\n", res.Model.EstimatedSeconds, m)
	fmt.Printf("  memory traffic : %.2f bytes/edge, %.1f%% remote\n",
		res.Model.MApE, 100*res.Model.RemoteFraction)
	fmt.Printf("  thread events  : %d spawns, %d migrations (Algorithm 2 bound: <= threads)\n",
		res.Sched.Spawned, res.Sched.Migrations)
	fmt.Printf("  rank sum       : %.6f (should be ~1)\n", hipa.RankSum(res.Ranks))

	fmt.Println("top 5 vertices:")
	for _, v := range hipa.TopK(res.Ranks, 5) {
		fmt.Printf("  vertex %6d  rank %.6f\n", v, res.Ranks[v])
	}
}
