// Webrank: the paper's motivating scenario — ranking a web hyperlink graph.
// Generates the Pay-Level-Domain analog and compares all five engines,
// reproducing the Table 2 / Fig. 5 story on one dataset: HiPa is fastest and
// moves the least remote memory.
package main

import (
	"fmt"
	"log"

	"hipa"
)

func main() {
	const divisor = 512

	g, err := hipa.Generate("pld", divisor)
	if err != nil {
		log.Fatal(err)
	}
	g.BuildIn() // pull-based engines need the in-edge form
	fmt.Printf("pld analog: %d vertices, %d edges (hyperlink graph)\n\n", g.NumVertices(), g.NumEdges())

	m := hipa.ScaledMachine(hipa.Skylake(), divisor)
	fmt.Printf("%-8s  %10s  %12s  %8s\n", "engine", "modelled-s", "bytes/edge", "remote")
	var hipaSec, bestOther float64
	for _, e := range hipa.Engines() {
		o := hipa.Options{Machine: m, Iterations: 20}
		switch e.Name() {
		case "HiPa", "p-PR":
			o.PartitionBytes = 256 << 10 / divisor
		case "GPOP":
			o.PartitionBytes = 1 << 20 / divisor
			o.Threads = m.PhysicalCores()
		}
		if e.Name() == "p-PR" {
			o.Threads = m.PhysicalCores()
		}
		res, err := e.Run(g, o)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s  %10.4f  %12.2f  %7.1f%%\n",
			res.Engine, res.Model.EstimatedSeconds, res.Model.MApE, 100*res.Model.RemoteFraction)
		if e.Name() == "HiPa" {
			hipaSec = res.Model.EstimatedSeconds
		} else if bestOther == 0 || res.Model.EstimatedSeconds < bestOther {
			bestOther = res.Model.EstimatedSeconds
		}
	}
	fmt.Printf("\nHiPa speedup over the best alternative: %.2fx (paper band: 1.11-1.45x)\n", bestOther/hipaSec)
}
