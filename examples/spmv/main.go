// SpMV: the paper frames PageRank as iterative sparse matrix-vector
// multiplication (§1) and names SpMV as the first future-work extension
// (§6). This example uses the HiPa substrate's SpMV kernel to count k-hop
// walks on a Graph500 Kronecker graph and cross-checks PageRank built from
// raw SpMV steps against the engine result.
package main

import (
	"fmt"
	"log"
	"math"

	"hipa"
)

func main() {
	g, err := hipa.RMAT(13, 16, 7) // 8192 vertices, ~131k edges
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("kron graph: %d vertices, %d edges\n\n", g.NumVertices(), g.NumEdges())

	cfg := hipa.AlgoConfig{Threads: 8}

	// Walks of length k from vertex 0: x0 = e_0, x_k = (A^T)^k e_0.
	x := make([]float32, g.NumVertices())
	x[0] = 1
	for k := 1; k <= 3; k++ {
		y, err := hipa.SpMVIterate(g, x, k, cfg)
		if err != nil {
			log.Fatal(err)
		}
		var total float64
		for _, v := range y {
			total += float64(v)
		}
		fmt.Printf("walks of length %d from vertex 0: %.0f\n", k, total)
	}

	// PageRank assembled from raw SpMV steps must match the HiPa engine.
	const iters = 10
	const d = 0.85
	n := g.NumVertices()
	rank := make([]float32, n)
	contrib := make([]float32, n)
	for i := range rank {
		rank[i] = 1 / float32(n)
	}
	base := float32((1 - d) / float64(n))
	for it := 0; it < iters; it++ {
		var dangling float64
		for v := 0; v < n; v++ {
			if deg := g.OutDegree(hipa.VertexID(v)); deg > 0 {
				contrib[v] = rank[v] / float32(deg)
			} else {
				contrib[v] = 0
				dangling += float64(rank[v])
			}
		}
		acc, err := hipa.SpMV(g, contrib, cfg)
		if err != nil {
			log.Fatal(err)
		}
		redis := float32(d * dangling / float64(n))
		for v := 0; v < n; v++ {
			rank[v] = base + d*acc[v] + redis
		}
	}

	res, err := hipa.HiPa.Run(g, hipa.Options{Iterations: iters, PartitionBytes: 4096})
	if err != nil {
		log.Fatal(err)
	}
	var worst float64
	for v := range rank {
		if diff := math.Abs(float64(rank[v] - res.Ranks[v])); diff > worst {
			worst = diff
		}
	}
	fmt.Printf("\nPageRank via raw SpMV vs HiPa engine: max abs difference %.2e\n", worst)
	fmt.Println("(the paper's observation: PageRank IS iterative SpMV)")
}
