// Social: influence analysis on a Twitter-style follower network — the
// paper's social-network use case, extended with the §6 future-work
// algorithms. Finds the top influencers with incremental PageRank-Delta,
// then measures how far the top influencer's posts can cascade with a
// parallel BFS.
package main

import (
	"fmt"
	"log"

	"hipa"
)

func main() {
	const divisor = 1024

	g, err := hipa.Generate("twitter", divisor)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("twitter analog: %d users, %d follow edges\n\n", g.NumVertices(), g.NumEdges())

	// Incremental PageRank: stop propagating deltas below epsilon. The
	// active set shrinks as influence scores converge.
	res, err := hipa.PageRankDelta(g, hipa.DeltaOptions{
		Config:        hipa.AlgoConfig{Threads: 8},
		Epsilon:       1e-8,
		MaxIterations: 40,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PageRank-Delta converged in %d iterations\n", res.Iterations)
	fmt.Printf("active vertices per iteration: %v ...\n\n", head(res.ActiveHistory, 8))

	top := hipa.TopK(res.Ranks, 5)
	fmt.Println("top influencers:")
	for _, v := range top {
		fmt.Printf("  user %6d  influence %.6f\n", v, res.Ranks[v])
	}

	// Cascade reach: BFS along follow edges from the top influencer.
	bfs, err := hipa.BFS(g, top[0], hipa.AlgoConfig{Threads: 8})
	if err != nil {
		log.Fatal(err)
	}
	maxDepth := int32(0)
	for _, l := range bfs.Levels {
		if l > maxDepth {
			maxDepth = l
		}
	}
	fmt.Printf("\ncascade from user %d: reaches %d of %d users (%.1f%%), max depth %d\n",
		top[0], bfs.Visited, g.NumVertices(),
		100*float64(bfs.Visited)/float64(g.NumVertices()), maxDepth)
}

func head(xs []int, n int) []int {
	if len(xs) < n {
		return xs
	}
	return xs[:n]
}
