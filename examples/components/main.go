// Components: the generic-framework scenario from the paper's conclusion —
// "the methodology of HiPa can be deployed to more generic use scenarios."
// Uses the partition-centric vertex-program framework on the HiPa substrate
// to label weakly connected components and compute hop distances on a web
// graph, with convergence by deactivation.
package main

import (
	"fmt"
	"log"
	"sort"

	"hipa"
)

func main() {
	g, err := hipa.Generate("wiki", 1024)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wiki analog: %d pages, %d links\n\n", g.NumVertices(), g.NumEdges())

	cfg := hipa.FrameworkConfig{Threads: 8, MaxIterations: 500}

	// Weakly connected components via min-label propagation.
	wcc, err := hipa.WCC(g, cfg)
	if err != nil {
		log.Fatal(err)
	}
	sizes := map[uint32]int{}
	for _, label := range wcc.Values {
		sizes[label]++
	}
	type comp struct {
		label uint32
		size  int
	}
	var comps []comp
	for l, s := range sizes {
		comps = append(comps, comp{l, s})
	}
	sort.Slice(comps, func(i, j int) bool { return comps[i].size > comps[j].size })
	fmt.Printf("WCC converged in %d iterations: %d components\n", wcc.Iterations, len(comps))
	for i, c := range comps {
		if i == 3 {
			break
		}
		fmt.Printf("  component %d: %d pages (%.1f%%)\n",
			c.label, c.size, 100*float64(c.size)/float64(g.NumVertices()))
	}

	// Hop distances from the giant component's canonical page.
	hops, err := hipa.Hops(g, hipa.VertexID(comps[0].label), cfg)
	if err != nil {
		log.Fatal(err)
	}
	hist := map[int32]int{}
	reached := 0
	for _, h := range hops.Values {
		if h != hipa.UnreachableHops {
			hist[h]++
			reached++
		}
	}
	fmt.Printf("\nhop distances from page %d (%d reachable):\n", comps[0].label, reached)
	for d := int32(0); int(d) < len(hist) && d < 10; d++ {
		fmt.Printf("  %2d hops: %d pages\n", d, hist[d])
	}

	// Reachability count, cross-checked against the hop labels.
	reach, err := hipa.Reachable(g, hipa.VertexID(comps[0].label), cfg)
	if err != nil {
		log.Fatal(err)
	}
	count := 0
	for _, r := range reach.Values {
		count += int(r)
	}
	fmt.Printf("\nforward-reachable pages: %d (agrees with hops: %v)\n", count, count == reached)
}
