module hipa

go 1.22
