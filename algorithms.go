package hipa

import "hipa/internal/algorithms"

// AlgoConfig configures the parallel substrate for the extension algorithms
// (SpMV, PageRank-Delta, BFS) — the paper's §6 future work, implemented on
// the same hierarchical partitioning as the HiPa engine.
type AlgoConfig = algorithms.Config

// SpMV computes y[v] = Σ_{u→v} x[u] (adjacency-matrix transpose product)
// with partition-centric scatter-gather.
func SpMV(g *Graph, x []float32, cfg AlgoConfig) ([]float32, error) {
	return algorithms.SpMV(g, x, cfg)
}

// SpMVIterate applies SpMV k times.
func SpMVIterate(g *Graph, x []float32, k int, cfg AlgoConfig) ([]float32, error) {
	return algorithms.SpMVIterate(g, x, k, cfg)
}

// DeltaOptions configures PageRankDelta.
type DeltaOptions = algorithms.DeltaOptions

// DeltaResult reports a PageRankDelta run.
type DeltaResult = algorithms.DeltaResult

// PageRankDelta computes PageRank incrementally, propagating only deltas
// above Epsilon. With Epsilon = 0 it equals standard PageRank.
func PageRankDelta(g *Graph, o DeltaOptions) (*DeltaResult, error) {
	return algorithms.PageRankDelta(g, o)
}

// BFSResult reports a breadth-first search.
type BFSResult = algorithms.BFSResult

// BFS runs a level-synchronous parallel breadth-first search from source.
func BFS(g *Graph, source VertexID, cfg AlgoConfig) (*BFSResult, error) {
	return algorithms.BFS(g, source, cfg)
}

// WeightedSpMV computes y[v] = Σ w(u,v)·x[u] with weights given per edge in
// CSR order. Weighted updates cannot share compressed messages, so this
// kernel runs partition-centric but pull-based.
func WeightedSpMV(g *Graph, x, weights []float32, cfg AlgoConfig) ([]float32, error) {
	return algorithms.WeightedSpMV(g, x, weights, cfg)
}

// PersonalizedPageRank computes PageRank with restarts concentrated on the
// given source vertices.
func PersonalizedPageRank(g *Graph, sources []VertexID, iterations int, damping float64, cfg AlgoConfig) ([]float32, error) {
	return algorithms.PersonalizedPageRank(g, sources, iterations, damping, cfg)
}
